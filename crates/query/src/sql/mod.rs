//! The SQL-ish front end: a dependency-free, positioned lexer + recursive-
//! descent parser whose only output is the existing [`QueryIr`].
//!
//! Every SQL query becomes an IR document first — there is no second semantic
//! surface. The planner, the plan goldens, `ir_differential` and the fuzz
//! oracle therefore pin the SQL front end end to end: [`parse_sql`] produces
//! the same `QueryIr` the JSON surface would, and [`to_sql`] renders any IR
//! back as canonical SQL whose re-parse reproduces it exactly (the fuzz
//! harness checks that round trip for every generated case).
//!
//! The grammar and lowering rules are specified normatively in
//! `crates/query/README.md` ("SQL front end"). Errors carry 1-based line/column
//! positions into the SQL text, with the same [`IrErrorKind`](crate::IrErrorKind)
//! split as the JSON
//! surface: [`IrErrorKind::Syntax`](crate::IrErrorKind::Syntax) for lexing and
//! parsing, [`IrErrorKind::Semantic`](crate::IrErrorKind::Semantic) for name
//! resolution, scope and typing.

mod ast;
mod lexer;
mod lower;
mod print;

use datablocks::DataType;

use crate::error::IrError;
use crate::ir::QueryIr;

/// The schema information SQL lowering needs: relation names and their ordered
/// `(column name, type)` lists.
///
/// Implemented for [`storage::Database`] (the usual case) and for
/// [`crate::fuzz::Catalog`] (so the fuzz harness round-trips SQL without
/// building a database).
pub trait SqlCatalog {
    /// The ordered columns of `relation`, or `None` if it does not exist.
    fn relation_columns(&self, relation: &str) -> Option<Vec<(String, DataType)>>;
}

impl SqlCatalog for storage::Database {
    fn relation_columns(&self, relation: &str) -> Option<Vec<(String, DataType)>> {
        if !self.contains(relation) {
            return None;
        }
        Some(
            self.relation(relation)
                .schema()
                .columns()
                .iter()
                .map(|col| (col.name.clone(), col.data_type))
                .collect(),
        )
    }
}

/// Parse SQL text and lower it to an IR document.
///
/// ```
/// use query::sql::parse_sql;
/// # let mut db = storage::Database::new();
/// # let schema = storage::Schema::new(vec![
/// #     storage::ColumnDef::new("a", datablocks::DataType::Int),
/// # ]);
/// # db.create_relation("t", schema);
/// let ir = parse_sql(&db, "SELECT a FROM t WHERE a < 10").unwrap();
/// assert_eq!(ir.version, query::IR_VERSION);
/// ```
pub fn parse_sql(catalog: &dyn SqlCatalog, text: &str) -> Result<QueryIr, IrError> {
    let stmt = ast::parse_statement(text)?;
    lower::lower_statement(catalog, &stmt)
}

/// Render an IR document as canonical SQL (see the module docs for the form).
///
/// Re-parsing the result against any catalog containing the scanned relations
/// reproduces the IR exactly.
pub fn to_sql(ir: &QueryIr) -> String {
    print::print_ir(ir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::DataType;

    /// A trivial in-memory catalog for tests.
    struct TestCatalog(Vec<(String, Vec<(String, DataType)>)>);

    impl SqlCatalog for TestCatalog {
        fn relation_columns(&self, relation: &str) -> Option<Vec<(String, DataType)>> {
            self.0
                .iter()
                .find(|(name, _)| name == relation)
                .map(|(_, cols)| cols.clone())
        }
    }

    fn catalog() -> TestCatalog {
        TestCatalog(vec![
            (
                "t".to_string(),
                vec![
                    ("a".to_string(), DataType::Int),
                    ("b".to_string(), DataType::Double),
                    ("s".to_string(), DataType::Str),
                ],
            ),
            (
                "u".to_string(),
                vec![
                    ("k".to_string(), DataType::Int),
                    ("v".to_string(), DataType::Int),
                ],
            ),
        ])
    }

    fn roundtrip(sql: &str) {
        let cat = catalog();
        let ir = parse_sql(&cat, sql).unwrap_or_else(|err| panic!("{sql}: {err}"));
        let printed = to_sql(&ir);
        let reparsed = parse_sql(&cat, &printed).unwrap_or_else(|err| panic!("{printed}: {err}"));
        assert_eq!(
            reparsed.to_pretty(),
            ir.to_pretty(),
            "canonical SQL did not round-trip:\noriginal: {sql}\nprinted: {printed}"
        );
    }

    #[test]
    fn bare_scan_keeps_duplicate_columns() {
        let ir = parse_sql(&catalog(), "SELECT a, a, b FROM t").unwrap();
        match &ir.root {
            crate::Node::Scan { columns, .. } => {
                assert_eq!(columns, &["a", "a", "b"], "duplicates must be preserved")
            }
            other => panic!("expected a bare scan, got {other:?}"),
        }
        roundtrip("SELECT a, a, b FROM t");
    }

    #[test]
    fn where_conjuncts_push_into_scan_predicates() {
        let ir = parse_sql(
            &catalog(),
            "SELECT sum(a) FROM t WHERE a BETWEEN 1 AND 5 AND b < 2.5 AND a + 1 < 3",
        )
        .unwrap();
        let pretty = ir.to_pretty();
        // `a BETWEEN` and `b <` push; `a + 1 < 3` stays a filter.
        assert!(pretty.contains(r#""between""#), "{pretty}");
        assert!(pretty.contains(r#""op": "filter""#), "{pretty}");
        roundtrip("SELECT sum(a) FROM t WHERE a BETWEEN 1 AND 5 AND b < 2.5 AND a + 1 < 3");
    }

    #[test]
    fn literal_type_mismatch_is_not_pushed() {
        // Int literal against a double column: stays a residual filter (the
        // scan kernels compare exactly-typed constants only).
        let ir = parse_sql(&catalog(), "SELECT sum(a) FROM t WHERE b < 2").unwrap();
        let pretty = ir.to_pretty();
        assert!(!pretty.contains(r#""predicates""#), "{pretty}");
        assert!(pretty.contains(r#""op": "filter""#), "{pretty}");
    }

    #[test]
    fn joins_fold_left_deep_with_semi_scope() {
        roundtrip(
            "SELECT k, sum(v) FROM t SEMI JOIN u ON a = k WHERE s = 'x' GROUP BY k ORDER BY k",
        );
        // After the semi join `t` is out of scope for the select list.
        let err = parse_sql(&catalog(), "SELECT a FROM t SEMI JOIN u ON a = k").unwrap_err();
        assert_eq!(err.kind, crate::IrErrorKind::Semantic);
    }

    #[test]
    fn aggregate_shape_is_enforced() {
        let err = parse_sql(&catalog(), "SELECT a, sum(b) FROM t").unwrap_err();
        assert!(
            err.message.contains("GROUP BY"),
            "unexpected message: {err}"
        );
        let err = parse_sql(&catalog(), "SELECT sum(sum(a)) FROM t").unwrap_err();
        assert_eq!(err.kind, crate::IrErrorKind::Semantic);
    }

    #[test]
    fn order_by_resolves_aliases_and_limit_requires_order() {
        roundtrip("SELECT a, count(*) AS n FROM t GROUP BY a ORDER BY n DESC, a LIMIT 3");
        let err = parse_sql(&catalog(), "SELECT a FROM t LIMIT 3").unwrap_err();
        assert!(err.message.contains("ORDER BY"), "{err}");
    }

    #[test]
    fn canonical_forms_round_trip() {
        for sql in [
            "SELECT * FROM t",
            "SELECT a AS x, s FROM t PREWHERE a BETWEEN -3 AND 7 AND s IS NOT NULL",
            "SELECT a + 1 ::int AS y FROM t",
            "SELECT CASE WHEN a > 0 THEN b ELSE 0.0 END::double AS c FROM t",
            "SELECT t.a, u.v FROM t JOIN EARLY u ON t.a = u.k",
            "SELECT a, b FROM t ORDER BY b DESC, a LIMIT 10",
            "SELECT sum(a * 2), avg(b), min(s), count(*) FROM t WHERE a <> 0 OR b >= 1.5",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_sql(&catalog(), "SELECT a\nFROM missing").unwrap_err();
        assert_eq!(err.kind, crate::IrErrorKind::Semantic);
        assert_eq!((err.pos.line, err.pos.col), (2, 6));
        let err = parse_sql(&catalog(), "SELECT nope FROM t").unwrap_err();
        assert_eq!((err.pos.line, err.pos.col), (1, 8));
    }
}
