//! AST → [`QueryIr`] lowering: name resolution, scan-column collection,
//! predicate classification and type inference.
//!
//! The rules are normative in `crates/query/README.md` ("SQL front end").
//! The load-bearing ones:
//!
//! * **Scan columns** are collected per base table in first-appearance order
//!   across the select items, then the `ON` conditions in join order, then the
//!   residual (non-pushed) `WHERE` conjuncts. Columns whose only references
//!   are pushed predicates are *not* projected (scan predicates restrict by
//!   name). A base table nothing references projects its first schema column.
//! * **`WHERE` classification**: the predicate is split into top-level `AND`
//!   conjuncts (textual order). A conjunct of shape `col <cmp> literal`,
//!   `literal <cmp> col` (comparison flipped) or `col BETWEEN lit AND lit` —
//!   referencing exactly one base table, with the literal type equal to the
//!   column type and no NULL literal — is **pushed** into that table's scan
//!   predicates (after any `PREWHERE` ones). Remaining conjuncts referencing a
//!   single source become a `filter` directly above that source (below joins —
//!   in this dialect single-source conjuncts are *defined* to apply pre-join,
//!   which is what makes them meaningful on the build side of a `SEMI JOIN`);
//!   conjuncts spanning several sources (or none) become a `filter` above the
//!   join tree. Within each bucket, conjuncts fold left-associatively.
//! * **Joins** fold left-deep in `FROM` order: the accumulated tree is the
//!   build side, the newly joined table the probe side. A `SEMI JOIN` keeps
//!   probe columns only, and its build-side sources leave scope.
//! * **Aggregation** is triggered by `GROUP BY` or any top-level aggregate
//!   call: the first G select items must repeat the `GROUP BY` columns in
//!   order, every remaining item must be an aggregate call. Declared types
//!   come from `::type` or inference (`count`/`count(*)` → int, `avg` →
//!   double, `sum`/`min`/`max` → operand type).
//! * A bare-columns `SELECT` from a single base table with no other clauses
//!   lowers to a plain `scan` whose projection is the select list **verbatim**
//!   (duplicates preserved) — the canonical form the SQL printer emits.

use datablocks::{DataType, Value};
use dbsimd::CmpOp;
use exec::ops::{AggFunc, JoinType, SortKey};

use super::ast::{
    AstExpr, AstExprKind, AstPred, AstPredKind, ColRef, SelectItem, SelectList, SelectStmt,
    TableRef,
};
use super::SqlCatalog;
use crate::error::IrError;
use crate::ir::{
    AggItem, ExprKind, IrExpr, Node, PredicateKind, QueryIr, ScanPredicate, TypedExpr,
};
use crate::json::Pos;
use crate::planner::{infer_type, value_type, Ty};
use crate::IR_VERSION;

/// An output column: optional name (for outer references and ORDER BY) + type.
type OutCol = (Option<String>, DataType);

/// Lower a parsed statement to an IR document.
pub(crate) fn lower_statement(
    catalog: &dyn SqlCatalog,
    stmt: &SelectStmt,
) -> Result<QueryIr, IrError> {
    let (root, _) = lower_select(catalog, stmt)?;
    Ok(QueryIr {
        version: IR_VERSION,
        root,
    })
}

/// One `FROM` source during lowering.
struct Source {
    alias: String,
    kind: SourceKind,
}

enum SourceKind {
    Base {
        pos: Pos,
        relation: String,
        /// Full schema of the relation.
        schema: Vec<(String, DataType)>,
        /// Projected schema indices, in first-appearance order.
        used: Vec<usize>,
        /// Scan predicates (PREWHERE first, then pushed WHERE conjuncts).
        preds: Vec<ScanPredicate>,
    },
    Sub {
        node: Node,
        cols: Vec<OutCol>,
    },
}

impl Source {
    /// Number of output columns the source's node will produce.
    fn width(&self) -> usize {
        match &self.kind {
            SourceKind::Base { used, .. } => used.len(),
            SourceKind::Sub { cols, .. } => cols.len(),
        }
    }

    /// Output column name + type at local position `idx`.
    fn out_col(&self, idx: usize) -> OutCol {
        match &self.kind {
            SourceKind::Base { schema, used, .. } => {
                let (name, ty) = &schema[used[idx]];
                (Some(name.clone()), *ty)
            }
            SourceKind::Sub { cols, .. } => cols[idx].clone(),
        }
    }
}

/// A column reference resolved to a source and a *schema-level* position
/// (base tables: schema index; subqueries: output index).
#[derive(Clone, Copy)]
struct Located {
    source: usize,
    raw: usize,
}

/// One classified `WHERE` conjunct.
enum Conjunct {
    /// Pushed into `source`'s scan predicates (already recorded there).
    Pushed,
    /// Residual predicate over exactly one source.
    Single(usize, AstExpr),
    /// Residual predicate spanning several sources (or none).
    Global(AstExpr),
}

struct Lowerer<'a> {
    catalog: &'a dyn SqlCatalog,
    sources: Vec<Source>,
}

/// Lower one (possibly nested) `SELECT`; returns the IR node and its output
/// columns.
fn lower_select(
    catalog: &dyn SqlCatalog,
    stmt: &SelectStmt,
) -> Result<(Node, Vec<OutCol>), IrError> {
    let mut lw = Lowerer {
        catalog,
        sources: Vec::new(),
    };
    lw.add_source(&stmt.from_first)?;
    for join in &stmt.joins {
        lw.add_source(&join.table)?;
    }

    // PREWHERE is the verbatim scan-predicate surface: single base table only.
    if !stmt.prewhere.is_empty() {
        if lw.sources.len() != 1 || !matches!(lw.sources[0].kind, SourceKind::Base { .. }) {
            return Err(IrError::semantic(
                stmt.prewhere[0].pos,
                "PREWHERE requires FROM to be a single base table".to_string(),
            ));
        }
        for pred in &stmt.prewhere {
            lw.push_prewhere(pred)?;
        }
    }

    if let Some(scan) = lw.try_simple_scan(stmt)? {
        return Ok(scan);
    }

    // Classify WHERE conjuncts (pushed predicates are recorded as we go).
    // Over a single subquery source there is nothing to push or separate, so
    // the whole predicate stays one filter — this keeps `filter` nodes a
    // round-trip fixed point of the canonical SQL form.
    let single_sub = stmt.joins.is_empty() && matches!(lw.sources[0].kind, SourceKind::Sub { .. });
    let mut conjuncts = Vec::new();
    if let Some(where_expr) = &stmt.where_clause {
        if single_sub {
            conjuncts.push(Conjunct::Single(0, where_expr.clone()));
        } else {
            let mut parts = Vec::new();
            flatten_and(where_expr, &mut parts);
            for part in parts {
                conjuncts.push(lw.classify_conjunct(part)?);
            }
        }
    }

    // Collect scan columns in normative order: select items, ON conditions,
    // residual conjuncts.
    match &stmt.list {
        SelectList::Star(_) => {
            // `*` projects everything in scope.
            for idx in 0..lw.sources.len() {
                if let SourceKind::Base { schema, .. } = &lw.sources[idx].kind {
                    for raw in 0..schema.len() {
                        lw.register(idx, raw);
                    }
                }
            }
        }
        SelectList::Items(items) => {
            for item in items {
                lw.collect_expr(&item.expr)?;
            }
        }
    }
    for join in &stmt.joins {
        for cond in &join.conds {
            lw.locate_and_register(&cond.left)?;
            lw.locate_and_register(&cond.right)?;
        }
    }
    for conjunct in &conjuncts {
        match conjunct {
            Conjunct::Pushed => {}
            Conjunct::Single(_, expr) | Conjunct::Global(expr) => lw.collect_expr(expr)?,
        }
    }
    // A base table nothing projects still needs one column to scan.
    for source in &mut lw.sources {
        if let SourceKind::Base { used, schema, .. } = &mut source.kind {
            if used.is_empty() && !schema.is_empty() {
                used.push(0);
            }
        }
    }

    // Per-source nodes, with single-source residual filters applied pre-join.
    let mut nodes: Vec<Option<Node>> = (0..lw.sources.len())
        .map(|idx| Some(lw.source_node(idx)))
        .collect();
    // All of one source's residual conjuncts fold into a single AND-combined
    // filter (matching how a hand-written plan would spell them), in WHERE
    // order.
    let mut single_filters: Vec<Option<IrExpr>> = vec![None; lw.sources.len()];
    for conjunct in &conjuncts {
        if let Conjunct::Single(idx, expr) = conjunct {
            let scope = Scope::single(&lw.sources, *idx);
            let lowered = lw.lower_expr(expr, &scope)?;
            single_filters[*idx] = Some(match single_filters[*idx].take() {
                None => lowered,
                Some(acc) => IrExpr {
                    pos: acc.pos,
                    kind: ExprKind::And(Box::new(acc), Box::new(lowered)),
                },
            });
        }
    }
    for (idx, predicate) in single_filters.into_iter().enumerate() {
        if let Some(predicate) = predicate {
            let input = nodes[idx].take().expect("source node consumed once");
            nodes[idx] = Some(Node::Filter {
                pos: predicate.pos,
                input: Box::new(input),
                predicate,
            });
        }
    }

    // Left-deep join tree; SEMI keeps probe columns only.
    let mut active = vec![0usize];
    let mut tree = nodes[0].take().expect("first source node");
    for (j, join) in stmt.joins.iter().enumerate() {
        let right = j + 1;
        let mut build_keys = Vec::new();
        let mut probe_keys = Vec::new();
        for cond in &join.conds {
            let left = lw.locate(&cond.left)?;
            let rightc = lw.locate(&cond.right)?;
            let (build, probe) = if active.contains(&left.source) && rightc.source == right {
                (left, rightc)
            } else if active.contains(&rightc.source) && left.source == right {
                (rightc, left)
            } else {
                return Err(IrError::semantic(
                    cond.pos,
                    "join condition must relate an in-scope column to the joined table".to_string(),
                ));
            };
            build_keys.push(scope_index(&lw.sources, &active, build));
            probe_keys.push(lw.local_index(probe));
        }
        let probe_node = nodes[right].take().expect("probe node");
        tree = Node::Join {
            pos: join.pos,
            join_type: if join.semi {
                JoinType::ProbeSemi
            } else {
                JoinType::Inner
            },
            build: Box::new(tree),
            probe: Box::new(probe_node),
            build_keys,
            probe_keys,
            early_probe: join.early,
        };
        if join.semi {
            active = vec![right];
        } else {
            active.push(right);
        }
    }

    // Residual conjuncts spanning several sources go above the join tree.
    let scope = Scope::active(&lw.sources, &active);
    let mut global_filter: Option<IrExpr> = None;
    for conjunct in &conjuncts {
        if let Conjunct::Global(expr) = conjunct {
            let lowered = lw.lower_expr(expr, &scope)?;
            global_filter = Some(match global_filter {
                None => lowered,
                Some(acc) => IrExpr {
                    pos: acc.pos,
                    kind: ExprKind::And(Box::new(acc), Box::new(lowered)),
                },
            });
        }
    }
    if let Some(predicate) = global_filter {
        tree = Node::Filter {
            pos: predicate.pos,
            input: Box::new(tree),
            predicate,
        };
    }

    // SELECT list: aggregate, project, or pass-through.
    let is_aggregate = !stmt.group_by.is_empty()
        || matches!(&stmt.list, SelectList::Items(items)
            if items.iter().any(|i| matches!(i.expr.kind, AstExprKind::Agg { .. })));
    let (mut tree, out_cols) = if is_aggregate {
        let SelectList::Items(items) = &stmt.list else {
            return Err(IrError::semantic(
                stmt.pos,
                "`SELECT *` cannot be combined with GROUP BY or aggregates".to_string(),
            ));
        };
        lw.lower_aggregate(stmt, items, tree, &scope)?
    } else {
        match &stmt.list {
            SelectList::Star(_) => {
                let out_cols = star_columns(&lw.sources, &active);
                (tree, out_cols)
            }
            SelectList::Items(items) => lw.lower_project(items, tree, &scope)?,
        }
    };

    // ORDER BY / LIMIT resolve against the output columns.
    if !stmt.order_by.is_empty() {
        let mut keys = Vec::new();
        for item in &stmt.order_by {
            let idx = output_index(&out_cols, &item.name, item.pos)?;
            keys.push(if item.desc {
                SortKey::desc(idx)
            } else {
                SortKey::asc(idx)
            });
        }
        tree = Node::Sort {
            pos: stmt.order_by[0].pos,
            input: Box::new(tree),
            keys,
            limit: stmt.limit,
        };
    } else if stmt.limit.is_some() {
        return Err(IrError::semantic(
            stmt.pos,
            "LIMIT requires ORDER BY".to_string(),
        ));
    }

    Ok((tree, out_cols))
}

/// Output columns of `SELECT *`: pass-through names over a single source,
/// fresh positional names (`c0`..`cN`) over a join (whose sides may repeat
/// names).
fn star_columns(sources: &[Source], active: &[usize]) -> Vec<OutCol> {
    if let [only] = active {
        let source = &sources[*only];
        return (0..source.width()).map(|i| source.out_col(i)).collect();
    }
    let mut cols = Vec::new();
    for &idx in active {
        let source = &sources[idx];
        for i in 0..source.width() {
            cols.push((Some(format!("c{}", cols.len())), source.out_col(i).1));
        }
    }
    cols
}

/// Resolve an output-column name (ORDER BY, outer references).
fn output_index(out_cols: &[OutCol], name: &str, pos: Pos) -> Result<usize, IrError> {
    let mut found = None;
    for (idx, (col_name, _)) in out_cols.iter().enumerate() {
        if col_name.as_deref() == Some(name) {
            if found.is_some() {
                return Err(IrError::semantic(
                    pos,
                    format!("output column `{name}` is ambiguous"),
                ));
            }
            found = Some(idx);
        }
    }
    found.ok_or_else(|| IrError::semantic(pos, format!("unknown output column `{name}`")))
}

/// Resolution scope: the output columns of a set of sources, with (source,
/// local) → flat index mapping.
struct Scope<'a> {
    sources: &'a [Source],
    active: Vec<usize>,
    types: Vec<DataType>,
}

impl<'a> Scope<'a> {
    fn active(sources: &'a [Source], active: &[usize]) -> Scope<'a> {
        let mut types = Vec::new();
        for &idx in active {
            let source = &sources[idx];
            for i in 0..source.width() {
                types.push(source.out_col(i).1);
            }
        }
        Scope {
            sources,
            active: active.to_vec(),
            types,
        }
    }

    fn single(sources: &'a [Source], idx: usize) -> Scope<'a> {
        Scope::active(sources, &[idx])
    }

    /// Flat index of a located column, or an error if its source is not in
    /// this scope (e.g. referencing a semi-join build side after the join).
    fn flat_index(&self, located: Located, local: usize, pos: Pos) -> Result<usize, IrError> {
        let mut offset = 0;
        for &idx in &self.active {
            if idx == located.source {
                return Ok(offset + local);
            }
            offset += self.sources[idx].width();
        }
        Err(IrError::semantic(
            pos,
            "column's table is no longer in scope here (it was consumed by a SEMI JOIN)"
                .to_string(),
        ))
    }
}

/// Flat index of a located column within the `active` source set (panics if
/// absent — join-key resolution checks membership first).
fn scope_index(sources: &[Source], active: &[usize], located: Located) -> usize {
    let mut offset = 0;
    for &idx in active {
        if idx == located.source {
            let local = match &sources[idx].kind {
                SourceKind::Base { used, .. } => used
                    .iter()
                    .position(|&u| u == located.raw)
                    .expect("located column was registered"),
                SourceKind::Sub { .. } => located.raw,
            };
            return offset + local;
        }
        offset += sources[idx].width();
    }
    unreachable!("scope_index called with out-of-scope source")
}

/// Split an expression into its top-level AND conjuncts, in textual order.
fn flatten_and<'e>(expr: &'e AstExpr, out: &mut Vec<&'e AstExpr>) {
    if let AstExprKind::And(lhs, rhs) = &expr.kind {
        flatten_and(lhs, out);
        flatten_and(rhs, out);
    } else {
        out.push(expr);
    }
}

impl Lowerer<'_> {
    fn add_source(&mut self, table: &TableRef) -> Result<(), IrError> {
        let (alias, pos, kind) = match table {
            TableRef::Base { pos, name, alias } => {
                let Some(columns) = self.catalog.relation_columns(name) else {
                    return Err(IrError::semantic(
                        *pos,
                        format!("unknown relation `{name}`"),
                    ));
                };
                (
                    alias.clone().unwrap_or_else(|| name.clone()),
                    *pos,
                    SourceKind::Base {
                        pos: *pos,
                        relation: name.clone(),
                        schema: columns,
                        used: Vec::new(),
                        preds: Vec::new(),
                    },
                )
            }
            TableRef::Sub { pos, query, alias } => {
                let (node, cols) = lower_select(self.catalog, query)?;
                (alias.clone(), *pos, SourceKind::Sub { node, cols })
            }
        };
        if self.sources.iter().any(|s| s.alias == alias) {
            return Err(IrError::semantic(
                pos,
                format!("duplicate table alias `{alias}`"),
            ));
        }
        self.sources.push(Source { alias, kind });
        Ok(())
    }

    fn push_prewhere(&mut self, pred: &AstPred) -> Result<(), IrError> {
        let SourceKind::Base { schema, preds, .. } = &mut self.sources[0].kind else {
            unreachable!("PREWHERE legality checked by caller");
        };
        if !schema.iter().any(|(name, _)| name == &pred.column) {
            return Err(IrError::semantic(
                pred.pos,
                format!("unknown PREWHERE column `{}`", pred.column),
            ));
        }
        let kind = match &pred.kind {
            AstPredKind::Cmp(op, value) => PredicateKind::Cmp(*op, value.clone()),
            AstPredKind::Between(lo, hi) => PredicateKind::Between(lo.clone(), hi.clone()),
            AstPredKind::IsNull => PredicateKind::IsNull,
            AstPredKind::IsNotNull => PredicateKind::IsNotNull,
        };
        preds.push(ScanPredicate {
            pos: pred.pos,
            column: pred.column.clone(),
            kind,
        });
        Ok(())
    }

    /// The canonical bare-scan form: single base table, bare select columns,
    /// nothing but PREWHERE / ORDER BY / LIMIT around it. Projection is the
    /// select list **verbatim** (duplicates preserved).
    fn try_simple_scan(&self, stmt: &SelectStmt) -> Result<Option<(Node, Vec<OutCol>)>, IrError> {
        if self.sources.len() != 1 || stmt.where_clause.is_some() || !stmt.group_by.is_empty() {
            return Ok(None);
        }
        let Source {
            kind:
                SourceKind::Base {
                    pos,
                    relation,
                    schema,
                    preds,
                    ..
                },
            ..
        } = &self.sources[0]
        else {
            return Ok(None);
        };
        let (columns, out_cols): (Vec<String>, Vec<OutCol>) = match &stmt.list {
            SelectList::Star(_) => schema
                .iter()
                .map(|(name, ty)| (name.clone(), (Some(name.clone()), *ty)))
                .unzip(),
            SelectList::Items(items) => {
                let mut columns = Vec::new();
                let mut out_cols = Vec::new();
                for item in items {
                    let AstExprKind::Col(col) = &item.expr.kind else {
                        return Ok(None);
                    };
                    if item.ty.is_some()
                        || col
                            .qualifier
                            .as_deref()
                            .is_some_and(|q| q != self.sources[0].alias)
                    {
                        return Ok(None);
                    }
                    let Some((_, ty)) = schema.iter().find(|(name, _)| name == &col.name) else {
                        return Err(IrError::semantic(
                            col.pos,
                            format!("unknown column `{}` in relation `{relation}`", col.name),
                        ));
                    };
                    columns.push(col.name.clone());
                    out_cols.push((
                        Some(item.alias.clone().unwrap_or_else(|| col.name.clone())),
                        *ty,
                    ));
                }
                (columns, out_cols)
            }
        };
        let mut node = Node::Scan {
            pos: *pos,
            relation: relation.clone(),
            columns,
            predicates: preds.clone(),
        };
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::new();
            for item in &stmt.order_by {
                let idx = output_index(&out_cols, &item.name, item.pos)?;
                keys.push(if item.desc {
                    SortKey::desc(idx)
                } else {
                    SortKey::asc(idx)
                });
            }
            node = Node::Sort {
                pos: stmt.order_by[0].pos,
                input: Box::new(node),
                keys,
                limit: stmt.limit,
            };
        } else if stmt.limit.is_some() {
            return Err(IrError::semantic(
                stmt.pos,
                "LIMIT requires ORDER BY".to_string(),
            ));
        }
        Ok(Some((node, out_cols)))
    }

    /// Resolve a column reference against the sources (schema-level).
    fn locate(&self, col: &ColRef) -> Result<Located, IrError> {
        if let Some(qualifier) = &col.qualifier {
            let Some(source_idx) = self.sources.iter().position(|s| &s.alias == qualifier) else {
                return Err(IrError::semantic(
                    col.pos,
                    format!("unknown table alias `{qualifier}`"),
                ));
            };
            let raw = self.locate_in(source_idx, col)?;
            return Ok(Located {
                source: source_idx,
                raw,
            });
        }
        let mut found = None;
        for source_idx in 0..self.sources.len() {
            if let Ok(raw) = self.locate_in(source_idx, col) {
                if found.is_some() {
                    return Err(IrError::semantic(
                        col.pos,
                        format!(
                            "column `{}` is ambiguous (qualify it with a table alias)",
                            col.name
                        ),
                    ));
                }
                found = Some(Located {
                    source: source_idx,
                    raw,
                });
            }
        }
        found.ok_or_else(|| IrError::semantic(col.pos, format!("unknown column `{}`", col.name)))
    }

    /// Position of `col` within one source: base-table schema index, or
    /// subquery output index.
    fn locate_in(&self, source_idx: usize, col: &ColRef) -> Result<usize, IrError> {
        match &self.sources[source_idx].kind {
            SourceKind::Base { schema, .. } => schema
                .iter()
                .position(|(name, _)| name == &col.name)
                .ok_or_else(|| {
                    IrError::semantic(col.pos, format!("unknown column `{}`", col.name))
                }),
            SourceKind::Sub { cols, .. } => {
                let mut found = None;
                for (idx, (name, _)) in cols.iter().enumerate() {
                    if name.as_deref() == Some(col.name.as_str()) {
                        if found.is_some() {
                            return Err(IrError::semantic(
                                col.pos,
                                format!("column `{}` is ambiguous in the subquery", col.name),
                            ));
                        }
                        found = Some(idx);
                    }
                }
                found.ok_or_else(|| {
                    IrError::semantic(col.pos, format!("unknown column `{}`", col.name))
                })
            }
        }
    }

    /// Register a schema column of a base table as projected.
    fn register(&mut self, source_idx: usize, raw: usize) {
        if let SourceKind::Base { used, .. } = &mut self.sources[source_idx].kind {
            if !used.contains(&raw) {
                used.push(raw);
            }
        }
    }

    fn locate_and_register(&mut self, col: &ColRef) -> Result<Located, IrError> {
        let located = self.locate(col)?;
        self.register(located.source, located.raw);
        Ok(located)
    }

    /// Register every column reference in an expression.
    fn collect_expr(&mut self, expr: &AstExpr) -> Result<(), IrError> {
        match &expr.kind {
            AstExprKind::Col(col) => {
                self.locate_and_register(col)?;
            }
            AstExprKind::Lit(_) => {}
            AstExprKind::Arith(_, lhs, rhs)
            | AstExprKind::Cmp(_, lhs, rhs)
            | AstExprKind::And(lhs, rhs)
            | AstExprKind::Or(lhs, rhs) => {
                self.collect_expr(lhs)?;
                self.collect_expr(rhs)?;
            }
            AstExprKind::Between(value, lo, hi) => {
                self.collect_expr(value)?;
                self.collect_expr(lo)?;
                self.collect_expr(hi)?;
            }
            AstExprKind::Case(cond, then, otherwise) => {
                self.collect_expr(cond)?;
                self.collect_expr(then)?;
                self.collect_expr(otherwise)?;
            }
            AstExprKind::Agg { arg, .. } => {
                if let Some(arg) = arg {
                    self.collect_expr(arg)?;
                }
            }
        }
        Ok(())
    }

    /// Classify one WHERE conjunct; pushable ones are appended to their base
    /// table's scan predicates immediately.
    fn classify_conjunct(&mut self, expr: &AstExpr) -> Result<Conjunct, IrError> {
        if let Some((located, pred)) = self.try_extract_scan_pred(expr)? {
            if let SourceKind::Base { preds, .. } = &mut self.sources[located.source].kind {
                preds.push(pred);
                return Ok(Conjunct::Pushed);
            }
        }
        let mut refs = Vec::new();
        collect_col_refs(expr, &mut refs);
        let mut source_set = Vec::new();
        for col in refs {
            let located = self.locate(col)?;
            if !source_set.contains(&located.source) {
                source_set.push(located.source);
            }
        }
        Ok(match source_set.as_slice() {
            [single] => Conjunct::Single(*single, expr.clone()),
            _ => Conjunct::Global(expr.clone()),
        })
    }

    /// Try to read a conjunct as a SARGable scan predicate over one base
    /// table: `col <cmp> lit`, `lit <cmp> col` (flipped), or
    /// `col BETWEEN lit AND lit`, with the literal type equal to the column
    /// type (no NULLs).
    fn try_extract_scan_pred(
        &self,
        expr: &AstExpr,
    ) -> Result<Option<(Located, ScanPredicate)>, IrError> {
        let (col, kind) = match &expr.kind {
            AstExprKind::Cmp(op, lhs, rhs) => match (&lhs.kind, &rhs.kind) {
                (AstExprKind::Col(col), AstExprKind::Lit(value)) => {
                    (col, PredicateKind::Cmp(*op, value.clone()))
                }
                (AstExprKind::Lit(value), AstExprKind::Col(col)) => {
                    (col, PredicateKind::Cmp(flip_cmp(*op), value.clone()))
                }
                _ => return Ok(None),
            },
            AstExprKind::Between(value, lo, hi) => match (&value.kind, &lo.kind, &hi.kind) {
                (AstExprKind::Col(col), AstExprKind::Lit(lo), AstExprKind::Lit(hi)) => {
                    (col, PredicateKind::Between(lo.clone(), hi.clone()))
                }
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        let located = self.locate(col)?;
        let SourceKind::Base { schema, .. } = &self.sources[located.source].kind else {
            return Ok(None);
        };
        let column_ty = schema[located.raw].1;
        let matches_ty = |value: &Value| value_type(value) == Ty::Known(column_ty);
        let ok = match &kind {
            PredicateKind::Cmp(_, value) => matches_ty(value),
            PredicateKind::Between(lo, hi) => matches_ty(lo) && matches_ty(hi),
            _ => unreachable!(),
        };
        if !ok {
            return Ok(None);
        }
        Ok(Some((
            located,
            ScanPredicate {
                pos: expr.pos,
                column: col.name.clone(),
                kind,
            },
        )))
    }

    /// IR node for one source (scan for base tables, the lowered subquery
    /// otherwise).
    fn source_node(&self, idx: usize) -> Node {
        match &self.sources[idx].kind {
            SourceKind::Base {
                pos,
                relation,
                schema,
                used,
                preds,
            } => Node::Scan {
                pos: *pos,
                relation: relation.clone(),
                columns: used.iter().map(|&u| schema[u].0.clone()).collect(),
                predicates: preds.clone(),
            },
            SourceKind::Sub { node, .. } => node.clone(),
        }
    }

    /// Position of a located column within its source's *output*.
    fn local_index(&self, located: Located) -> usize {
        match &self.sources[located.source].kind {
            SourceKind::Base { used, .. } => used
                .iter()
                .position(|&u| u == located.raw)
                .expect("located column was registered"),
            SourceKind::Sub { .. } => located.raw,
        }
    }

    /// Lower a scalar expression against a scope (no aggregates allowed).
    fn lower_expr(&self, expr: &AstExpr, scope: &Scope<'_>) -> Result<IrExpr, IrError> {
        let kind = match &expr.kind {
            AstExprKind::Col(col) => {
                let located = self.locate(col)?;
                let local = self.local_index(located);
                ExprKind::Col(scope.flat_index(located, local, col.pos)?)
            }
            AstExprKind::Lit(value) => ExprKind::Lit(value.clone()),
            AstExprKind::Arith(op, lhs, rhs) => ExprKind::Arith(
                *op,
                Box::new(self.lower_expr(lhs, scope)?),
                Box::new(self.lower_expr(rhs, scope)?),
            ),
            AstExprKind::Cmp(op, lhs, rhs) => ExprKind::Cmp(
                *op,
                Box::new(self.lower_expr(lhs, scope)?),
                Box::new(self.lower_expr(rhs, scope)?),
            ),
            AstExprKind::And(lhs, rhs) => ExprKind::And(
                Box::new(self.lower_expr(lhs, scope)?),
                Box::new(self.lower_expr(rhs, scope)?),
            ),
            AstExprKind::Or(lhs, rhs) => ExprKind::Or(
                Box::new(self.lower_expr(lhs, scope)?),
                Box::new(self.lower_expr(rhs, scope)?),
            ),
            AstExprKind::Between(value, lo, hi) => {
                // Desugar: value >= lo AND value <= hi (duplicating `value`).
                let value_ir = self.lower_expr(value, scope)?;
                let lo_ir = self.lower_expr(lo, scope)?;
                let hi_ir = self.lower_expr(hi, scope)?;
                ExprKind::And(
                    Box::new(IrExpr {
                        pos: expr.pos,
                        kind: ExprKind::Cmp(CmpOp::Ge, Box::new(value_ir.clone()), Box::new(lo_ir)),
                    }),
                    Box::new(IrExpr {
                        pos: expr.pos,
                        kind: ExprKind::Cmp(CmpOp::Le, Box::new(value_ir), Box::new(hi_ir)),
                    }),
                )
            }
            AstExprKind::Case(cond, then, otherwise) => ExprKind::Case(
                Box::new(self.lower_expr(cond, scope)?),
                Box::new(self.lower_expr(then, scope)?),
                Box::new(self.lower_expr(otherwise, scope)?),
            ),
            AstExprKind::Agg { .. } => {
                return Err(IrError::semantic(
                    expr.pos,
                    "aggregate calls are only allowed at the top level of a select item"
                        .to_string(),
                ))
            }
        };
        Ok(IrExpr {
            pos: expr.pos,
            kind,
        })
    }

    /// Declared type for a lowered expression: explicit `::type` or inference.
    fn declared_type(
        &self,
        lowered: &IrExpr,
        explicit: Option<DataType>,
        scope: &Scope<'_>,
        pos: Pos,
        what: &str,
    ) -> Result<DataType, IrError> {
        if let Some(ty) = explicit {
            return Ok(ty);
        }
        match infer_type(lowered, &scope.types)? {
            Ty::Known(ty) => Ok(ty),
            Ty::Any => Err(IrError::semantic(
                pos,
                format!(
                    "cannot infer the type of {what}; annotate it with ::int, ::double or ::str"
                ),
            )),
        }
    }

    /// Lower an aggregate select list (GROUP BY prefix + aggregate calls).
    fn lower_aggregate(
        &self,
        stmt: &SelectStmt,
        items: &[SelectItem],
        input: Node,
        scope: &Scope<'_>,
    ) -> Result<(Node, Vec<OutCol>), IrError> {
        let group_count = stmt.group_by.len();
        if items.len() < group_count {
            return Err(IrError::semantic(
                stmt.pos,
                "every GROUP BY column must appear as a leading select item".to_string(),
            ));
        }
        let mut groups = Vec::new();
        let mut out_cols = Vec::new();
        for (idx, (gb_pos, gb_name)) in stmt.group_by.iter().enumerate() {
            let item = &items[idx];
            let item_name = item.alias.clone().or_else(|| match &item.expr.kind {
                AstExprKind::Col(col) => Some(col.name.clone()),
                _ => None,
            });
            if item_name.as_deref() != Some(gb_name.as_str()) {
                return Err(IrError::semantic(
                    *gb_pos,
                    format!(
                        "select item #{} must be the GROUP BY column `{gb_name}` (in GROUP BY order)",
                        idx + 1
                    ),
                ));
            }
            let lowered = self.lower_expr(&item.expr, scope)?;
            let ty = self.declared_type(&lowered, item.ty, scope, item.pos, "a group key")?;
            groups.push(TypedExpr { expr: lowered, ty });
            out_cols.push((item_name, ty));
        }
        let mut aggregates = Vec::new();
        for item in &items[group_count..] {
            let AstExprKind::Agg { func, arg } = &item.expr.kind else {
                return Err(IrError::semantic(
                    item.pos,
                    "select items after the GROUP BY columns must be aggregate calls".to_string(),
                ));
            };
            let lowered = match arg {
                Some(arg) => Some(self.lower_expr(arg, scope)?),
                None => None,
            };
            let ty = match item.ty {
                Some(ty) => ty,
                None => match func {
                    AggFunc::Count | AggFunc::CountStar => DataType::Int,
                    AggFunc::Avg => DataType::Double,
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                        let operand = lowered.as_ref().expect("non-count_star has an operand");
                        match infer_type(operand, &scope.types)? {
                            Ty::Known(ty) => ty,
                            Ty::Any => {
                                return Err(IrError::semantic(
                                    item.pos,
                                    "cannot infer the aggregate's type; annotate it with ::int, ::double or ::str"
                                        .to_string(),
                                ))
                            }
                        }
                    }
                },
            };
            aggregates.push(AggItem {
                pos: item.pos,
                func: *func,
                expr: lowered,
                ty,
            });
            out_cols.push((item.alias.clone(), ty));
        }
        Ok((
            Node::Aggregate {
                pos: stmt.pos,
                input: Box::new(input),
                groups,
                aggregates,
            },
            out_cols,
        ))
    }

    /// Lower a plain (non-aggregate) select list to a `project`.
    fn lower_project(
        &self,
        items: &[SelectItem],
        input: Node,
        scope: &Scope<'_>,
    ) -> Result<(Node, Vec<OutCol>), IrError> {
        let mut exprs = Vec::new();
        let mut out_cols = Vec::new();
        for item in items {
            let lowered = self.lower_expr(&item.expr, scope)?;
            let ty = self.declared_type(&lowered, item.ty, scope, item.pos, "a select item")?;
            let name = item.alias.clone().or_else(|| match &item.expr.kind {
                AstExprKind::Col(col) => Some(col.name.clone()),
                _ => None,
            });
            exprs.push(TypedExpr { expr: lowered, ty });
            out_cols.push((name, ty));
        }
        let pos = items[0].pos;
        Ok((
            Node::Project {
                pos,
                input: Box::new(input),
                exprs,
            },
            out_cols,
        ))
    }
}

/// Collect every column reference in an expression, in textual order.
fn collect_col_refs<'e>(expr: &'e AstExpr, out: &mut Vec<&'e ColRef>) {
    match &expr.kind {
        AstExprKind::Col(col) => out.push(col),
        AstExprKind::Lit(_) => {}
        AstExprKind::Arith(_, lhs, rhs)
        | AstExprKind::Cmp(_, lhs, rhs)
        | AstExprKind::And(lhs, rhs)
        | AstExprKind::Or(lhs, rhs) => {
            collect_col_refs(lhs, out);
            collect_col_refs(rhs, out);
        }
        AstExprKind::Between(value, lo, hi) => {
            collect_col_refs(value, out);
            collect_col_refs(lo, out);
            collect_col_refs(hi, out);
        }
        AstExprKind::Case(cond, then, otherwise) => {
            collect_col_refs(cond, out);
            collect_col_refs(then, out);
            collect_col_refs(otherwise, out);
        }
        AstExprKind::Agg { arg, .. } => {
            if let Some(arg) = arg {
                collect_col_refs(arg, out);
            }
        }
    }
}

fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}
