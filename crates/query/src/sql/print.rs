//! The canonical SQL printer: `to_sql` renders any [`QueryIr`] as one SQL
//! statement whose re-parse + lowering reproduces the IR exactly (verified for
//! every generated case by the fuzz harness's SQL round-trip stage).
//!
//! The canonical form is deliberately rigid — one nested `SELECT` per IR node,
//! child outputs always aliased `c0..cN`:
//!
//! * `scan` → `SELECT col AS c0, ... FROM rel [PREWHERE ...]` (the bare-scan
//!   form the lowering maps back to a verbatim projection);
//! * `filter` → `SELECT * FROM (<input>) AS t WHERE <expr>`;
//! * `project` → `SELECT <expr>::<ty> AS c0, ... FROM (<input>) AS t`;
//! * `aggregate` → group keys then aggregate calls, each `::typed`, with
//!   `GROUP BY c0, ...` naming the leading items;
//! * `join` → `SELECT * FROM (<build>) AS b [SEMI ]JOIN [EARLY ](<probe>) AS p
//!   ON b.cI = p.cJ [AND ...]`;
//! * `sort` → `SELECT * FROM (<input>) AS t ORDER BY cK [DESC], ... [LIMIT n]`.
//!
//! Expressions print with minimal parentheses: a left-associative operator
//! prints its left child at its own precedence and its right child one level
//! tighter, so the parser's left-fold reconstructs the tree; comparisons are
//! non-associative and parenthesize both sides.

use std::fmt::Write as _;

use datablocks::Value;
use dbsimd::CmpOp;
use exec::ops::AggFunc;
use exec::ArithOp;

use crate::ir::{ExprKind, IrExpr, Node, PredicateKind, QueryIr, ScanPredicate};
use crate::planner::type_name;

/// Render an IR document as canonical SQL text.
pub(crate) fn print_ir(ir: &QueryIr) -> String {
    print_node(&ir.root)
}

fn print_node(node: &Node) -> String {
    match node {
        Node::Scan {
            relation,
            columns,
            predicates,
            ..
        } => {
            let mut s = String::from("SELECT ");
            for (idx, name) in columns.iter().enumerate() {
                if idx > 0 {
                    s.push_str(", ");
                }
                write!(s, "{name} AS c{idx}").unwrap();
            }
            write!(s, " FROM {relation}").unwrap();
            if !predicates.is_empty() {
                s.push_str(" PREWHERE ");
                for (idx, pred) in predicates.iter().enumerate() {
                    if idx > 0 {
                        s.push_str(" AND ");
                    }
                    s.push_str(&print_predicate(pred));
                }
            }
            s
        }
        Node::Filter {
            input, predicate, ..
        } => {
            format!(
                "SELECT * FROM ({}) AS t WHERE {}",
                print_node(input),
                print_expr(predicate, 0)
            )
        }
        Node::Project { input, exprs, .. } => {
            let mut s = String::from("SELECT ");
            for (idx, item) in exprs.iter().enumerate() {
                if idx > 0 {
                    s.push_str(", ");
                }
                write!(
                    s,
                    "{}::{} AS c{idx}",
                    print_expr(&item.expr, 6),
                    type_name(item.ty)
                )
                .unwrap();
            }
            write!(s, " FROM ({}) AS t", print_node(input)).unwrap();
            s
        }
        Node::Aggregate {
            input,
            groups,
            aggregates,
            ..
        } => {
            let mut s = String::from("SELECT ");
            let mut idx = 0usize;
            for group in groups {
                if idx > 0 {
                    s.push_str(", ");
                }
                write!(
                    s,
                    "{}::{} AS c{idx}",
                    print_expr(&group.expr, 6),
                    type_name(group.ty)
                )
                .unwrap();
                idx += 1;
            }
            for agg in aggregates {
                if idx > 0 {
                    s.push_str(", ");
                }
                let call = match (&agg.func, &agg.expr) {
                    (AggFunc::CountStar, _) => "count(*)".to_string(),
                    (func, Some(expr)) => {
                        format!("{}({})", agg_name(*func), print_expr(expr, 0))
                    }
                    (func, None) => {
                        unreachable!("{:?} without an operand", func)
                    }
                };
                write!(s, "{call}::{} AS c{idx}", type_name(agg.ty)).unwrap();
                idx += 1;
            }
            write!(s, " FROM ({}) AS t", print_node(input)).unwrap();
            if !groups.is_empty() {
                s.push_str(" GROUP BY ");
                for gi in 0..groups.len() {
                    if gi > 0 {
                        s.push_str(", ");
                    }
                    write!(s, "c{gi}").unwrap();
                }
            }
            s
        }
        Node::Join {
            join_type,
            build,
            probe,
            build_keys,
            probe_keys,
            early_probe,
            ..
        } => {
            let mut s = format!(
                "SELECT * FROM ({}) AS b {}JOIN {}({}) AS p ON ",
                print_node(build),
                if *join_type == exec::ops::JoinType::ProbeSemi {
                    "SEMI "
                } else {
                    ""
                },
                if *early_probe { "EARLY " } else { "" },
                print_node(probe),
            );
            for (idx, (bk, pk)) in build_keys.iter().zip(probe_keys).enumerate() {
                if idx > 0 {
                    s.push_str(" AND ");
                }
                write!(s, "b.c{bk} = p.c{pk}").unwrap();
            }
            s
        }
        Node::Sort {
            input, keys, limit, ..
        } => {
            let mut s = format!("SELECT * FROM ({}) AS t ORDER BY ", print_node(input));
            for (idx, key) in keys.iter().enumerate() {
                if idx > 0 {
                    s.push_str(", ");
                }
                write!(s, "c{}", key.column).unwrap();
                if key.descending {
                    s.push_str(" DESC");
                }
            }
            if let Some(limit) = limit {
                write!(s, " LIMIT {limit}").unwrap();
            }
            s
        }
    }
}

fn agg_name(func: AggFunc) -> &'static str {
    match func {
        AggFunc::Sum => "sum",
        AggFunc::Count => "count",
        AggFunc::CountStar => "count", // printed as count(*) by the caller
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    }
}

fn print_predicate(pred: &ScanPredicate) -> String {
    let column = &pred.column;
    match &pred.kind {
        PredicateKind::Cmp(op, value) => {
            format!("{column} {} {}", cmp_symbol(*op), print_value(value))
        }
        PredicateKind::Between(lo, hi) => {
            format!(
                "{column} BETWEEN {} AND {}",
                print_value(lo),
                print_value(hi)
            )
        }
        PredicateKind::IsNull => format!("{column} IS NULL"),
        PredicateKind::IsNotNull => format!("{column} IS NOT NULL"),
    }
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn print_value(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Int(v) => format!("{v}"),
        Value::Double(v) => format!("{v:?}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Operator precedence for minimal parenthesization (atoms are 6).
fn prec(expr: &IrExpr) -> u8 {
    match &expr.kind {
        ExprKind::Or(..) => 1,
        ExprKind::And(..) => 2,
        ExprKind::Cmp(..) => 3,
        ExprKind::Arith(ArithOp::Add | ArithOp::Sub, ..) => 4,
        ExprKind::Arith(ArithOp::Mul | ArithOp::Div, ..) => 5,
        ExprKind::Col(_) | ExprKind::Lit(_) | ExprKind::Case(..) => 6,
    }
}

/// Print an expression, parenthesizing if it binds looser than `min_prec`.
fn print_expr(expr: &IrExpr, min_prec: u8) -> String {
    let own = prec(expr);
    let body = match &expr.kind {
        ExprKind::Col(idx) => format!("c{idx}"),
        ExprKind::Lit(value) => print_value(value),
        ExprKind::Arith(op, lhs, rhs) => {
            let symbol = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            format!(
                "{} {symbol} {}",
                print_expr(lhs, own),
                print_expr(rhs, own + 1)
            )
        }
        ExprKind::Cmp(op, lhs, rhs) => {
            // Comparisons are non-associative: both sides print one level
            // tighter, so nested comparisons always parenthesize.
            format!(
                "{} {} {}",
                print_expr(lhs, own + 1),
                cmp_symbol(*op),
                print_expr(rhs, own + 1)
            )
        }
        ExprKind::And(lhs, rhs) => {
            format!("{} AND {}", print_expr(lhs, own), print_expr(rhs, own + 1))
        }
        ExprKind::Or(lhs, rhs) => {
            format!("{} OR {}", print_expr(lhs, own), print_expr(rhs, own + 1))
        }
        ExprKind::Case(cond, then, otherwise) => {
            format!(
                "CASE WHEN {} THEN {} ELSE {} END",
                print_expr(cond, 0),
                print_expr(then, 0),
                print_expr(otherwise, 0)
            )
        }
    };
    if own < min_prec {
        format!("({body})")
    } else {
        body
    }
}
