//! The SQL lexer: positioned tokens over the dialect of `crates/query/README.md`.
//!
//! Every token carries the 1-based line/column of its first character (the same
//! [`Pos`] convention as [`crate::json`]), so parser and lowering errors anchor
//! to the query text exactly like JSON-IR errors do. `--` starts a comment that
//! runs to the end of the line. Keywords are case-insensitive; identifiers are
//! case-sensitive. String literals are single-quoted with `''` escaping the
//! quote.

use crate::error::IrError;
use crate::json::Pos;

/// A token kind plus its literal payload where applicable.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// Identifier or (contextual) function name.
    Ident(String),
    /// Case-normalised keyword (SELECT, FROM, ...).
    Keyword(Keyword),
    /// Integer literal (always non-negative; unary minus is a separate token).
    Int(i64),
    /// Double literal (contains `.` or an exponent).
    Double(f64),
    /// Single-quoted string literal (unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `::`
    DoubleColon,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// The reserved words of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs, clippy::upper_case_acronyms)]
pub(crate) enum Keyword {
    Select,
    From,
    Prewhere,
    Where,
    Group,
    Order,
    By,
    Limit,
    As,
    And,
    Or,
    Not,
    Between,
    Is,
    Null,
    Case,
    When,
    Then,
    Else,
    End,
    Join,
    Semi,
    Early,
    On,
    Asc,
    Desc,
}

fn keyword(word: &str) -> Option<Keyword> {
    Some(match word.to_ascii_uppercase().as_str() {
        "SELECT" => Keyword::Select,
        "FROM" => Keyword::From,
        "PREWHERE" => Keyword::Prewhere,
        "WHERE" => Keyword::Where,
        "GROUP" => Keyword::Group,
        "ORDER" => Keyword::Order,
        "BY" => Keyword::By,
        "LIMIT" => Keyword::Limit,
        "AS" => Keyword::As,
        "AND" => Keyword::And,
        "OR" => Keyword::Or,
        "NOT" => Keyword::Not,
        "BETWEEN" => Keyword::Between,
        "IS" => Keyword::Is,
        "NULL" => Keyword::Null,
        "CASE" => Keyword::Case,
        "WHEN" => Keyword::When,
        "THEN" => Keyword::Then,
        "ELSE" => Keyword::Else,
        "END" => Keyword::End,
        "JOIN" => Keyword::Join,
        "SEMI" => Keyword::Semi,
        "EARLY" => Keyword::Early,
        "ON" => Keyword::On,
        "ASC" => Keyword::Asc,
        "DESC" => Keyword::Desc,
        _ => return None,
    })
}

/// A positioned token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub pos: Pos,
    pub tok: Tok,
}

/// Human-readable name of a token for error messages.
pub(crate) fn tok_name(tok: &Tok) -> String {
    match tok {
        Tok::Ident(name) => format!("identifier `{name}`"),
        Tok::Keyword(kw) => format!("keyword `{kw:?}`").to_uppercase(),
        Tok::Int(v) => format!("integer {v}"),
        Tok::Double(v) => format!("number {v:?}"),
        Tok::Str(s) => format!("string {s:?}"),
        Tok::Comma => "`,`".into(),
        Tok::LParen => "`(`".into(),
        Tok::RParen => "`)`".into(),
        Tok::Dot => "`.`".into(),
        Tok::DoubleColon => "`::`".into(),
        Tok::Star => "`*`".into(),
        Tok::Slash => "`/`".into(),
        Tok::Plus => "`+`".into(),
        Tok::Minus => "`-`".into(),
        Tok::Eq => "`=`".into(),
        Tok::Ne => "`<>`".into(),
        Tok::Lt => "`<`".into(),
        Tok::Le => "`<=`".into(),
        Tok::Gt => "`>`".into(),
        Tok::Ge => "`>=`".into(),
        Tok::Eof => "end of input".into(),
    }
}

fn syntax(pos: Pos, message: impl Into<String>) -> IrError {
    IrError {
        kind: crate::IrErrorKind::Syntax,
        message: message.into(),
        pos,
    }
}

/// Tokenize the whole input (appending a final [`Tok::Eof`]).
pub(crate) fn tokenize(text: &str) -> Result<Vec<Token>, IrError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! advance {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance!(),
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    advance!();
                }
            }
            ',' | '(' | ')' | '.' | '*' | '/' | '+' | '-' | '=' => {
                let tok = match c {
                    ',' => Tok::Comma,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '.' => Tok::Dot,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    _ => Tok::Eq,
                };
                advance!();
                tokens.push(Token { pos, tok });
            }
            ':' => {
                advance!();
                if chars.get(i) != Some(&':') {
                    return Err(syntax(pos, "expected `::` (a single `:` is not a token)"));
                }
                advance!();
                tokens.push(Token {
                    pos,
                    tok: Tok::DoubleColon,
                });
            }
            '<' => {
                advance!();
                let tok = match chars.get(i) {
                    Some('=') => {
                        advance!();
                        Tok::Le
                    }
                    Some('>') => {
                        advance!();
                        Tok::Ne
                    }
                    _ => Tok::Lt,
                };
                tokens.push(Token { pos, tok });
            }
            '>' => {
                advance!();
                let tok = if chars.get(i) == Some(&'=') {
                    advance!();
                    Tok::Ge
                } else {
                    Tok::Gt
                };
                tokens.push(Token { pos, tok });
            }
            '\'' => {
                advance!();
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(syntax(pos, "unterminated string literal")),
                        Some('\'') => {
                            advance!();
                            if chars.get(i) == Some(&'\'') {
                                s.push('\'');
                                advance!();
                            } else {
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            advance!();
                        }
                    }
                }
                tokens.push(Token {
                    pos,
                    tok: Tok::Str(s),
                });
            }
            '0'..='9' => {
                let mut digits = String::new();
                let mut is_double = false;
                while matches!(chars.get(i), Some('0'..='9')) {
                    digits.push(chars[i]);
                    advance!();
                }
                // A fraction only when a digit follows the dot (so `c0.x` style
                // qualified names never collide — column refs start with a letter).
                if chars.get(i) == Some(&'.') && matches!(chars.get(i + 1), Some('0'..='9')) {
                    is_double = true;
                    digits.push('.');
                    advance!();
                    while matches!(chars.get(i), Some('0'..='9')) {
                        digits.push(chars[i]);
                        advance!();
                    }
                }
                if matches!(chars.get(i), Some('e' | 'E')) {
                    let mut j = i + 1;
                    if matches!(chars.get(j), Some('+' | '-')) {
                        j += 1;
                    }
                    if matches!(chars.get(j), Some('0'..='9')) {
                        is_double = true;
                        while i < j {
                            digits.push(chars[i]);
                            advance!();
                        }
                        while matches!(chars.get(i), Some('0'..='9')) {
                            digits.push(chars[i]);
                            advance!();
                        }
                    }
                }
                let tok = if is_double {
                    let v: f64 = digits
                        .parse()
                        .map_err(|_| syntax(pos, format!("invalid number literal `{digits}`")))?;
                    Tok::Double(v)
                } else {
                    let v: i64 = digits.parse().map_err(|_| {
                        syntax(pos, format!("integer literal `{digits}` is out of range"))
                    })?;
                    Tok::Int(v)
                };
                tokens.push(Token { pos, tok });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while chars
                    .get(i)
                    .is_some_and(|&ch| ch.is_alphanumeric() || ch == '_')
                {
                    word.push(chars[i]);
                    advance!();
                }
                let tok = match keyword(&word) {
                    Some(kw) => Tok::Keyword(kw),
                    None => Tok::Ident(word),
                };
                tokens.push(Token { pos, tok });
            }
            other => {
                return Err(syntax(pos, format!("unexpected character {other:?}")));
            }
        }
    }
    tokens.push(Token {
        pos: Pos { line, col },
        tok: Tok::Eof,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<Tok> {
        tokenize(text).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_basic_query() {
        let toks = kinds("SELECT a FROM t WHERE a <= 1.5 -- tail\n");
        assert_eq!(
            toks,
            vec![
                Tok::Keyword(Keyword::Select),
                Tok::Ident("a".into()),
                Tok::Keyword(Keyword::From),
                Tok::Ident("t".into()),
                Tok::Keyword(Keyword::Where),
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Double(1.5),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn strings_escape_quotes_and_keep_unicode() {
        assert_eq!(
            kinds("'it''s' 'héllo' ''"),
            vec![
                Tok::Str("it's".into()),
                Tok::Str("héllo".into()),
                Tok::Str(String::new()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_split_int_vs_double() {
        assert_eq!(
            kinds("7 0.5 1e6 3.25"),
            vec![
                Tok::Int(7),
                Tok::Double(0.5),
                Tok::Double(1e6),
                Tok::Double(3.25),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let toks = tokenize("SELECT\n  a").unwrap();
        assert_eq!((toks[0].pos.line, toks[0].pos.col), (1, 1));
        assert_eq!((toks[1].pos.line, toks[1].pos.col), (2, 3));
    }

    #[test]
    fn unterminated_string_is_positioned() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert_eq!(err.kind, crate::IrErrorKind::Syntax);
        assert_eq!((err.pos.line, err.pos.col), (1, 8));
    }
}
