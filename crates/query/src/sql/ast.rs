//! SQL AST and the recursive-descent parser.
//!
//! The grammar (normative copy in `crates/query/README.md`):
//!
//! ```text
//! query       := select_stmt EOF
//! select_stmt := SELECT select_list FROM from_clause
//!                [PREWHERE pred {AND pred}] [WHERE expr]
//!                [GROUP BY ident {, ident}]
//!                [ORDER BY order_item {, order_item}] [LIMIT int]
//! select_list := '*' | select_item {, select_item}
//! select_item := expr ['::' type] [AS ident]
//! from_clause := table_ref { [SEMI] JOIN [EARLY] table_ref ON join_cond {AND join_cond} }
//! table_ref   := ident [AS ident] | '(' select_stmt ')' AS ident
//! join_cond   := col_ref '=' col_ref
//! pred        := ident (cmp_op literal | BETWEEN literal AND literal | IS [NOT] NULL)
//! order_item  := ident [ASC | DESC]
//! col_ref     := ident ['.' ident]
//! ```
//!
//! Expression precedence, loosest first: `OR` < `AND` < comparisons/`BETWEEN`
//! (non-associative) < `+ -` < `* /` < unary minus < primary. Aggregate calls
//! (`sum`/`count`/`avg`/`min`/`max`, plus `count(*)`) parse anywhere a primary
//! does; lowering rejects them outside select-item top level.

use datablocks::{DataType, Value};
use dbsimd::CmpOp;
use exec::ops::AggFunc;
use exec::ArithOp;

use super::lexer::{tok_name, tokenize, Keyword, Tok, Token};
use crate::error::{IrError, IrErrorKind};
use crate::json::Pos;

/// A column reference, optionally qualified by a source alias.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ColRef {
    pub pos: Pos,
    pub qualifier: Option<String>,
    pub name: String,
}

/// A parsed scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AstExpr {
    pub pos: Pos,
    pub kind: AstExprKind,
}

/// Expression alternatives (superset of the IR vocabulary: column refs are by
/// name, `BETWEEN` survives as a node, aggregate calls parse inline).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AstExprKind {
    Col(ColRef),
    Lit(Value),
    Arith(ArithOp, Box<AstExpr>, Box<AstExpr>),
    Cmp(CmpOp, Box<AstExpr>, Box<AstExpr>),
    And(Box<AstExpr>, Box<AstExpr>),
    Or(Box<AstExpr>, Box<AstExpr>),
    /// `expr BETWEEN lo AND hi` (inclusive both ends).
    Between(Box<AstExpr>, Box<AstExpr>, Box<AstExpr>),
    Case(Box<AstExpr>, Box<AstExpr>, Box<AstExpr>),
    /// Aggregate call; `arg` is `None` exactly for `count(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Box<AstExpr>>,
    },
}

/// One `SELECT` output item.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SelectItem {
    pub pos: Pos,
    pub expr: AstExpr,
    /// Declared output type from `::type`, if any.
    pub ty: Option<DataType>,
    pub alias: Option<String>,
}

/// The select list: `*` or explicit items.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SelectList {
    Star(Pos),
    Items(Vec<SelectItem>),
}

/// A `FROM` source.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TableRef {
    Base {
        pos: Pos,
        name: String,
        alias: Option<String>,
    },
    Sub {
        pos: Pos,
        query: Box<SelectStmt>,
        alias: String,
    },
}

/// One `= `-equality join condition.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JoinCond {
    pub pos: Pos,
    pub left: ColRef,
    pub right: ColRef,
}

/// One `[SEMI] JOIN [EARLY] table ON ...` clause.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JoinClause {
    pub pos: Pos,
    pub semi: bool,
    pub early: bool,
    pub table: TableRef,
    pub conds: Vec<JoinCond>,
}

/// A `PREWHERE` predicate (the SARGable scan-predicate shapes, verbatim).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AstPred {
    pub pos: Pos,
    pub column: String,
    pub kind: AstPredKind,
}

/// The `PREWHERE` comparison alternatives.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AstPredKind {
    Cmp(CmpOp, Value),
    Between(Value, Value),
    IsNull,
    IsNotNull,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OrderItem {
    pub pos: Pos,
    pub name: String,
    pub desc: bool,
}

/// A full `SELECT` statement (possibly nested as a `FROM` subquery).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SelectStmt {
    pub pos: Pos,
    pub list: SelectList,
    pub from_first: TableRef,
    pub joins: Vec<JoinClause>,
    pub prewhere: Vec<AstPred>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<(Pos, String)>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
}

fn syntax(pos: Pos, message: impl Into<String>) -> IrError {
    IrError {
        kind: IrErrorKind::Syntax,
        message: message.into(),
        pos,
    }
}

/// Parse a complete statement (must consume the whole input).
pub(crate) fn parse_statement(text: &str) -> Result<SelectStmt, IrError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser { tokens, idx: 0 };
    let stmt = parser.select_stmt()?;
    let tail = parser.peek();
    if tail.tok != Tok::Eof {
        return Err(syntax(
            tail.pos,
            format!("expected end of input, found {}", tok_name(&tail.tok)),
        ));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.idx]
    }

    fn peek2(&self) -> &Tok {
        self.tokens
            .get(self.idx + 1)
            .map(|t| &t.tok)
            .unwrap_or(&Tok::Eof)
    }

    fn next(&mut self) -> Token {
        let token = self.tokens[self.idx].clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        token
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek().tok == Tok::Keyword(kw) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<Pos, IrError> {
        let token = self.peek().clone();
        if token.tok == Tok::Keyword(kw) {
            self.idx += 1;
            Ok(token.pos)
        } else {
            Err(syntax(
                token.pos,
                format!(
                    "expected {}, found {}",
                    format!("`{kw:?}`").to_uppercase(),
                    tok_name(&token.tok)
                ),
            ))
        }
    }

    fn eat_tok(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, tok: Tok) -> Result<Pos, IrError> {
        let token = self.peek().clone();
        if token.tok == tok {
            self.idx += 1;
            Ok(token.pos)
        } else {
            Err(syntax(
                token.pos,
                format!(
                    "expected {}, found {}",
                    tok_name(&tok),
                    tok_name(&token.tok)
                ),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(Pos, String), IrError> {
        let token = self.next();
        match token.tok {
            Tok::Ident(name) => Ok((token.pos, name)),
            other => Err(syntax(
                token.pos,
                format!("expected {what}, found {}", tok_name(&other)),
            )),
        }
    }

    // ------------------------------------------------------------- statement

    fn select_stmt(&mut self) -> Result<SelectStmt, IrError> {
        let pos = self.expect_keyword(Keyword::Select)?;
        let list = self.select_list()?;
        self.expect_keyword(Keyword::From)?;
        let from_first = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let join_pos = self.peek().pos;
            let semi = if self.peek().tok == Tok::Keyword(Keyword::Semi) {
                self.idx += 1;
                self.expect_keyword(Keyword::Join)?;
                true
            } else if self.eat_keyword(Keyword::Join) {
                false
            } else {
                break;
            };
            let early = self.eat_keyword(Keyword::Early);
            let table = self.table_ref()?;
            self.expect_keyword(Keyword::On)?;
            let mut conds = vec![self.join_cond()?];
            while self.eat_keyword(Keyword::And) {
                conds.push(self.join_cond()?);
            }
            joins.push(JoinClause {
                pos: join_pos,
                semi,
                early,
                table,
                conds,
            });
        }
        let mut prewhere = Vec::new();
        if self.eat_keyword(Keyword::Prewhere) {
            prewhere.push(self.prewhere_pred()?);
            while self.eat_keyword(Keyword::And) {
                prewhere.push(self.prewhere_pred()?);
            }
        }
        let where_clause = if self.eat_keyword(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.push(self.expect_ident("a group-by column")?);
            while self.eat_tok(&Tok::Comma) {
                group_by.push(self.expect_ident("a group-by column")?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            order_by.push(self.order_item()?);
            while self.eat_tok(&Tok::Comma) {
                order_by.push(self.order_item()?);
            }
        }
        let mut limit = None;
        if self.eat_keyword(Keyword::Limit) {
            let token = self.next();
            match token.tok {
                Tok::Int(v) if v >= 0 => limit = Some(v as usize),
                other => {
                    return Err(syntax(
                        token.pos,
                        format!(
                            "LIMIT takes a non-negative integer, found {}",
                            tok_name(&other)
                        ),
                    ))
                }
            }
        }
        Ok(SelectStmt {
            pos,
            list,
            from_first,
            joins,
            prewhere,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<SelectList, IrError> {
        if self.peek().tok == Tok::Star {
            let pos = self.next().pos;
            return Ok(SelectList::Star(pos));
        }
        let mut items = vec![self.select_item()?];
        while self.eat_tok(&Tok::Comma) {
            items.push(self.select_item()?);
        }
        Ok(SelectList::Items(items))
    }

    fn select_item(&mut self) -> Result<SelectItem, IrError> {
        let pos = self.peek().pos;
        let expr = self.expr()?;
        let ty = if self.eat_tok(&Tok::DoubleColon) {
            Some(self.type_name()?)
        } else {
            None
        };
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident("an output alias")?.1)
        } else {
            None
        };
        Ok(SelectItem {
            pos,
            expr,
            ty,
            alias,
        })
    }

    fn type_name(&mut self) -> Result<DataType, IrError> {
        let (pos, name) = self.expect_ident("a type (`int`, `double` or `str`)")?;
        match name.as_str() {
            "int" => Ok(DataType::Int),
            "double" => Ok(DataType::Double),
            "str" => Ok(DataType::Str),
            other => Err(syntax(
                pos,
                format!("unknown type `{other}` (expected `int`, `double` or `str`)"),
            )),
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, IrError> {
        let token = self.peek().clone();
        if token.tok == Tok::LParen {
            self.idx += 1;
            let query = self.select_stmt()?;
            self.expect_tok(Tok::RParen)?;
            self.expect_keyword(Keyword::As)?;
            let (_, alias) = self.expect_ident("a subquery alias")?;
            return Ok(TableRef::Sub {
                pos: token.pos,
                query: Box::new(query),
                alias,
            });
        }
        let (pos, name) = self.expect_ident("a relation name")?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident("a table alias")?.1)
        } else {
            None
        };
        Ok(TableRef::Base { pos, name, alias })
    }

    fn join_cond(&mut self) -> Result<JoinCond, IrError> {
        let left = self.col_ref()?;
        self.expect_tok(Tok::Eq)?;
        let right = self.col_ref()?;
        Ok(JoinCond {
            pos: left.pos,
            left,
            right,
        })
    }

    fn col_ref(&mut self) -> Result<ColRef, IrError> {
        let (pos, first) = self.expect_ident("a column reference")?;
        if self.eat_tok(&Tok::Dot) {
            let (_, name) = self.expect_ident("a column name after `.`")?;
            Ok(ColRef {
                pos,
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColRef {
                pos,
                qualifier: None,
                name: first,
            })
        }
    }

    fn order_item(&mut self) -> Result<OrderItem, IrError> {
        let (pos, name) = self.expect_ident("an order-by column")?;
        let desc = if self.eat_keyword(Keyword::Desc) {
            true
        } else {
            self.eat_keyword(Keyword::Asc);
            false
        };
        Ok(OrderItem { pos, name, desc })
    }

    // -------------------------------------------------------------- PREWHERE

    fn prewhere_pred(&mut self) -> Result<AstPred, IrError> {
        let (pos, column) = self.expect_ident("a PREWHERE column")?;
        let token = self.next();
        let kind = match token.tok {
            Tok::Eq => AstPredKind::Cmp(CmpOp::Eq, self.literal()?),
            Tok::Ne => AstPredKind::Cmp(CmpOp::Ne, self.literal()?),
            Tok::Lt => AstPredKind::Cmp(CmpOp::Lt, self.literal()?),
            Tok::Le => AstPredKind::Cmp(CmpOp::Le, self.literal()?),
            Tok::Gt => AstPredKind::Cmp(CmpOp::Gt, self.literal()?),
            Tok::Ge => AstPredKind::Cmp(CmpOp::Ge, self.literal()?),
            Tok::Keyword(Keyword::Between) => {
                let lo = self.literal()?;
                self.expect_keyword(Keyword::And)?;
                let hi = self.literal()?;
                AstPredKind::Between(lo, hi)
            }
            Tok::Keyword(Keyword::Is) => {
                if self.eat_keyword(Keyword::Not) {
                    self.expect_keyword(Keyword::Null)?;
                    AstPredKind::IsNotNull
                } else {
                    self.expect_keyword(Keyword::Null)?;
                    AstPredKind::IsNull
                }
            }
            other => {
                return Err(syntax(
                    token.pos,
                    format!(
                        "expected a comparison, BETWEEN or IS [NOT] NULL, found {}",
                        tok_name(&other)
                    ),
                ))
            }
        };
        Ok(AstPred { pos, column, kind })
    }

    /// A literal constant: `[-] number`, string, or NULL.
    fn literal(&mut self) -> Result<Value, IrError> {
        let token = self.next();
        match token.tok {
            Tok::Int(v) => Ok(Value::Int(v)),
            Tok::Double(v) => Ok(Value::Double(v)),
            Tok::Str(s) => Ok(Value::Str(s)),
            Tok::Keyword(Keyword::Null) => Ok(Value::Null),
            Tok::Minus => {
                let inner = self.next();
                match inner.tok {
                    Tok::Int(v) => Ok(Value::Int(-v)),
                    Tok::Double(v) => Ok(Value::Double(-v)),
                    other => Err(syntax(
                        inner.pos,
                        format!(
                            "`-` must precede a number literal, found {}",
                            tok_name(&other)
                        ),
                    )),
                }
            }
            other => Err(syntax(
                token.pos,
                format!("expected a literal, found {}", tok_name(&other)),
            )),
        }
    }

    // ----------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<AstExpr, IrError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, IrError> {
        let mut lhs = self.and_expr()?;
        while self.peek().tok == Tok::Keyword(Keyword::Or) {
            self.idx += 1;
            let rhs = self.and_expr()?;
            lhs = AstExpr {
                pos: lhs.pos,
                kind: AstExprKind::Or(Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AstExpr, IrError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek().tok == Tok::Keyword(Keyword::And) {
            self.idx += 1;
            let rhs = self.cmp_expr()?;
            lhs = AstExpr {
                pos: lhs.pos,
                kind: AstExprKind::And(Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<AstExpr, IrError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().tok {
            Tok::Eq => Some(CmpOp::Eq),
            Tok::Ne => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            Tok::Keyword(Keyword::Between) => {
                self.idx += 1;
                let lo = self.add_expr()?;
                self.expect_keyword(Keyword::And)?;
                let hi = self.add_expr()?;
                return Ok(AstExpr {
                    pos: lhs.pos,
                    kind: AstExprKind::Between(Box::new(lhs), Box::new(lo), Box::new(hi)),
                });
            }
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                self.idx += 1;
                let rhs = self.add_expr()?;
                Ok(AstExpr {
                    pos: lhs.pos,
                    kind: AstExprKind::Cmp(op, Box::new(lhs), Box::new(rhs)),
                })
            }
        }
    }

    fn add_expr(&mut self) -> Result<AstExpr, IrError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => ArithOp::Add,
                Tok::Minus => ArithOp::Sub,
                _ => break,
            };
            self.idx += 1;
            let rhs = self.mul_expr()?;
            lhs = AstExpr {
                pos: lhs.pos,
                kind: AstExprKind::Arith(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AstExpr, IrError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => ArithOp::Mul,
                Tok::Slash => ArithOp::Div,
                _ => break,
            };
            self.idx += 1;
            let rhs = self.unary_expr()?;
            lhs = AstExpr {
                pos: lhs.pos,
                kind: AstExprKind::Arith(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr, IrError> {
        let token = self.peek().clone();
        if token.tok == Tok::Minus {
            self.idx += 1;
            let inner = self.next();
            let value = match inner.tok {
                Tok::Int(v) => Value::Int(-v),
                Tok::Double(v) => Value::Double(-v),
                other => {
                    return Err(syntax(
                        inner.pos,
                        format!(
                            "unary `-` must precede a number literal, found {}",
                            tok_name(&other)
                        ),
                    ))
                }
            };
            return Ok(AstExpr {
                pos: token.pos,
                kind: AstExprKind::Lit(value),
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<AstExpr, IrError> {
        let token = self.next();
        let kind = match token.tok {
            Tok::Int(v) => AstExprKind::Lit(Value::Int(v)),
            Tok::Double(v) => AstExprKind::Lit(Value::Double(v)),
            Tok::Str(s) => AstExprKind::Lit(Value::Str(s)),
            Tok::Keyword(Keyword::Null) => AstExprKind::Lit(Value::Null),
            Tok::LParen => {
                let inner = self.expr()?;
                self.expect_tok(Tok::RParen)?;
                return Ok(inner);
            }
            Tok::Keyword(Keyword::Case) => {
                self.expect_keyword(Keyword::When)?;
                let cond = self.expr()?;
                self.expect_keyword(Keyword::Then)?;
                let then = self.expr()?;
                self.expect_keyword(Keyword::Else)?;
                let otherwise = self.expr()?;
                self.expect_keyword(Keyword::End)?;
                AstExprKind::Case(Box::new(cond), Box::new(then), Box::new(otherwise))
            }
            Tok::Ident(name) if self.peek().tok == Tok::LParen => {
                // Contextual aggregate function call.
                let func = match name.as_str() {
                    "sum" => AggFunc::Sum,
                    "count" => AggFunc::Count,
                    "avg" => AggFunc::Avg,
                    "min" => AggFunc::Min,
                    "max" => AggFunc::Max,
                    other => {
                        return Err(syntax(
                            token.pos,
                            format!(
                                "unknown function `{other}` (expected sum, count, avg, min or max)"
                            ),
                        ))
                    }
                };
                self.idx += 1; // consume `(`
                if func == AggFunc::Count && self.peek().tok == Tok::Star {
                    self.idx += 1;
                    self.expect_tok(Tok::RParen)?;
                    AstExprKind::Agg {
                        func: AggFunc::CountStar,
                        arg: None,
                    }
                } else {
                    let arg = self.expr()?;
                    self.expect_tok(Tok::RParen)?;
                    AstExprKind::Agg {
                        func,
                        arg: Some(Box::new(arg)),
                    }
                }
            }
            Tok::Ident(first) => {
                if self.peek().tok == Tok::Dot && matches!(self.peek2(), Tok::Ident(_)) {
                    self.idx += 1;
                    let (_, name) = self.expect_ident("a column name after `.`")?;
                    AstExprKind::Col(ColRef {
                        pos: token.pos,
                        qualifier: Some(first),
                        name,
                    })
                } else {
                    AstExprKind::Col(ColRef {
                        pos: token.pos,
                        qualifier: None,
                        name: first,
                    })
                }
            }
            other => {
                return Err(syntax(
                    token.pos,
                    format!("expected an expression, found {}", tok_name(&other)),
                ))
            }
        };
        Ok(AstExpr {
            pos: token.pos,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let stmt = parse_statement("SELECT a FROM t").unwrap();
        assert!(matches!(stmt.list, SelectList::Items(ref v) if v.len() == 1));
        assert!(matches!(stmt.from_first, TableRef::Base { ref name, .. } if name == "t"));
        assert!(stmt.joins.is_empty() && stmt.where_clause.is_none());
    }

    #[test]
    fn between_binds_tighter_than_and() {
        let stmt = parse_statement("SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND b < 3").unwrap();
        let expr = stmt.where_clause.unwrap();
        let AstExprKind::And(lhs, _) = expr.kind else {
            panic!("top level must be AND, got {expr:?}");
        };
        assert!(matches!(lhs.kind, AstExprKind::Between(..)));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = parse_statement("SELECT a FROM t )").unwrap_err();
        assert_eq!(err.kind, IrErrorKind::Syntax);
        assert_eq!((err.pos.line, err.pos.col), (1, 17));
    }

    #[test]
    fn semi_join_with_early_flag() {
        let stmt =
            parse_statement("SELECT * FROM a SEMI JOIN b ON a.x = b.y JOIN EARLY c ON c1 = c2")
                .unwrap();
        assert_eq!(stmt.joins.len(), 2);
        assert!(stmt.joins[0].semi && !stmt.joins[0].early);
        assert!(!stmt.joins[1].semi && stmt.joins[1].early);
    }

    #[test]
    fn unary_minus_only_folds_literals() {
        assert!(parse_statement("SELECT -1.5 FROM t").is_ok());
        let err = parse_statement("SELECT -a FROM t").unwrap_err();
        assert_eq!(err.kind, IrErrorKind::Syntax);
    }
}
