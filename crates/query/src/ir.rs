//! The versioned JSON IR for logical query plans.
//!
//! This module defines the **logical** plan vocabulary — six relational node
//! kinds (`scan`, `filter`, `project`, `aggregate`, `join`, `sort`), scalar
//! expressions mirroring [`exec::expr::Expr`], typed literals, and SARGable scan
//! predicates mirroring [`datablocks::scan::Restriction`] — together with the
//! decoder from positioned JSON ([`crate::json`]) and the canonical serializer.
//!
//! The byte-level contract (every accepted field, the typing rules, the
//! versioning policy and the error taxonomy) is specified normatively in
//! `crates/query/README.md`; this module is its implementation. Decoding is
//! **strict**: unknown node kinds, unknown fields, missing fields and
//! wrongly-typed fields are all [`IrErrorKind::Schema`](crate::IrErrorKind)
//! errors anchored to a line/column of the source text. Name/type resolution
//! against a catalog happens later, in [`crate::Planner`].

use datablocks::{DataType, Value};
use dbsimd::CmpOp;
use exec::ops::{AggFunc, JoinType, SortKey};
use exec::ArithOp;

use crate::error::IrError;
use crate::json::{self, Json, JsonValue, Pos};

/// The IR version this build reads and writes.
pub const IR_VERSION: i64 = 1;

/// A complete IR document: the format version plus the root logical node.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryIr {
    /// Format version (must equal [`IR_VERSION`]).
    pub version: i64,
    /// The root of the logical plan.
    pub root: Node,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A base-table scan: named relation, projected columns (by name), and
    /// SARGable predicates evaluated inside the scan (on compressed data, with
    /// SMA/PSMA pruning). Predicate columns are independent of the projection.
    Scan {
        /// Position of the node in the source text.
        pos: Pos,
        /// Relation name, resolved against the catalog at plan time.
        relation: String,
        /// Projected column names (the node's output, in order).
        columns: Vec<String>,
        /// SARGable predicates pushed into the scan.
        predicates: Vec<ScanPredicate>,
    },
    /// Keep only tuples for which `predicate` is true (SQL-ish truthiness:
    /// NULL and zero are false).
    Filter {
        /// Position of the node in the source text.
        pos: Pos,
        /// Input node.
        input: Box<Node>,
        /// The predicate expression over the input's columns.
        predicate: IrExpr,
    },
    /// Compute new columns from expressions over the input.
    Project {
        /// Position of the node in the source text.
        pos: Pos,
        /// Input node.
        input: Box<Node>,
        /// Output expressions with their declared types.
        exprs: Vec<TypedExpr>,
    },
    /// Hash aggregation: group by `groups`, compute `aggregates` per group.
    /// Output columns are the group keys followed by the aggregates; groups are
    /// emitted in sorted key order (deterministic for every thread count).
    Aggregate {
        /// Position of the node in the source text.
        pos: Pos,
        /// Input node.
        input: Box<Node>,
        /// Group-key expressions with their declared types.
        groups: Vec<TypedExpr>,
        /// Aggregates to compute per group.
        aggregates: Vec<AggItem>,
    },
    /// Hash equi-join: the build side is materialised into a hash table, the
    /// probe side streams. `inner` output is build columns ++ probe columns;
    /// `semi` keeps probe tuples with at least one build match (probe columns
    /// only). NULL keys never join.
    Join {
        /// Position of the node in the source text.
        pos: Pos,
        /// Inner or probe-semi join.
        join_type: JoinType,
        /// Build side (materialised).
        build: Box<Node>,
        /// Probe side (streamed).
        probe: Box<Node>,
        /// Key column positions in the build output.
        build_keys: Vec<usize>,
        /// Key column positions in the probe output.
        probe_keys: Vec<usize>,
        /// Enable the early-probe tag bitmap (Appendix E).
        early_probe: bool,
    },
    /// Sort the full input, optionally keeping only the first `limit` tuples.
    Sort {
        /// Position of the node in the source text.
        pos: Pos,
        /// Input node.
        input: Box<Node>,
        /// Sort keys (column position + direction), most significant first.
        keys: Vec<SortKey>,
        /// Optional `LIMIT`.
        limit: Option<usize>,
    },
}

impl Node {
    /// Position of the node in the source text.
    pub fn pos(&self) -> Pos {
        match self {
            Node::Scan { pos, .. }
            | Node::Filter { pos, .. }
            | Node::Project { pos, .. }
            | Node::Aggregate { pos, .. }
            | Node::Join { pos, .. }
            | Node::Sort { pos, .. } => *pos,
        }
    }
}

/// An expression with a declared output type (projection or group key).
#[derive(Debug, Clone, PartialEq)]
pub struct TypedExpr {
    /// The expression.
    pub expr: IrExpr,
    /// Declared output type; the planner checks it against the inferred type.
    pub ty: DataType,
}

/// One aggregate of an `aggregate` node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    /// Position in the source text.
    pub pos: Pos,
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated expression; absent exactly for `count_star`.
    pub expr: Option<IrExpr>,
    /// Declared output type; the planner checks it against the function.
    pub ty: DataType,
}

/// A SARGable predicate of a `scan` node (one restricted column, compared with
/// typed literal constants — the only predicate shape the compressed scan
/// kernels evaluate directly).
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPredicate {
    /// Position in the source text.
    pub pos: Pos,
    /// Restricted column, by name (need not be projected).
    pub column: String,
    /// The comparison.
    pub kind: PredicateKind,
}

/// The comparison alternatives of a [`ScanPredicate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateKind {
    /// `column <op> constant`
    Cmp(CmpOp, Value),
    /// `column BETWEEN lo AND hi` (inclusive).
    Between(Value, Value),
    /// `column IS NULL`
    IsNull,
    /// `column IS NOT NULL`
    IsNotNull,
}

/// A scalar expression with a source position on every node.
#[derive(Debug, Clone, PartialEq)]
pub struct IrExpr {
    /// Position in the source text.
    pub pos: Pos,
    /// The expression alternative.
    pub kind: ExprKind,
}

/// The expression vocabulary — a positioned mirror of [`exec::expr::Expr`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Input column by position.
    Col(usize),
    /// Typed literal constant.
    Lit(Value),
    /// Arithmetic (`add`/`sub`/`mul`/`div`, SQL NULL propagation; integer
    /// division widens to double).
    Arith(ArithOp, Box<IrExpr>, Box<IrExpr>),
    /// Comparison yielding 1/0/NULL.
    Cmp(CmpOp, Box<IrExpr>, Box<IrExpr>),
    /// Three-valued logical AND.
    And(Box<IrExpr>, Box<IrExpr>),
    /// Three-valued logical OR.
    Or(Box<IrExpr>, Box<IrExpr>),
    /// `CASE WHEN cond THEN a ELSE b END` (NULL condition takes the ELSE arm).
    Case(Box<IrExpr>, Box<IrExpr>, Box<IrExpr>),
}

impl IrExpr {
    /// Convert into the executable expression form (positions dropped).
    pub fn to_exec(&self) -> exec::Expr {
        match &self.kind {
            ExprKind::Col(idx) => exec::Expr::Col(*idx),
            ExprKind::Lit(value) => exec::Expr::Const(value.clone()),
            ExprKind::Arith(op, lhs, rhs) => {
                exec::Expr::Arith(*op, Box::new(lhs.to_exec()), Box::new(rhs.to_exec()))
            }
            ExprKind::Cmp(op, lhs, rhs) => {
                exec::Expr::Cmp(*op, Box::new(lhs.to_exec()), Box::new(rhs.to_exec()))
            }
            ExprKind::And(lhs, rhs) => {
                exec::Expr::And(Box::new(lhs.to_exec()), Box::new(rhs.to_exec()))
            }
            ExprKind::Or(lhs, rhs) => {
                exec::Expr::Or(Box::new(lhs.to_exec()), Box::new(rhs.to_exec()))
            }
            ExprKind::Case(cond, then, otherwise) => exec::Expr::Case(
                Box::new(cond.to_exec()),
                Box::new(then.to_exec()),
                Box::new(otherwise.to_exec()),
            ),
        }
    }
}

/// Parse an IR document from JSON text (syntax + schema stages; no catalog
/// needed). Semantic validation happens in [`crate::Planner::plan`].
pub fn parse_ir(text: &str) -> Result<QueryIr, IrError> {
    let doc = json::parse(text)?;
    let obj = Obj::new(&doc, "IR document")?;
    obj.check_keys(&["version", "plan"])?;
    let version_json = obj.require("version")?;
    let version = match version_json.value {
        JsonValue::Int(v) => v,
        _ => {
            return Err(IrError::schema(
                version_json.pos,
                format!(
                    "`version` must be an integer, found {}",
                    version_json.value.kind_name()
                ),
            ))
        }
    };
    if version != IR_VERSION {
        return Err(IrError::schema(
            version_json.pos,
            format!("unsupported IR version {version} (this build supports version {IR_VERSION})"),
        ));
    }
    let root = parse_node(obj.require("plan")?)?;
    Ok(QueryIr { version, root })
}

// ---------------------------------------------------------------- JSON helpers

/// A borrowed JSON object with schema-error helpers.
struct Obj<'a> {
    pos: Pos,
    context: &'a str,
    fields: &'a [(String, Json)],
}

impl<'a> Obj<'a> {
    fn new(json: &'a Json, context: &'a str) -> Result<Obj<'a>, IrError> {
        match &json.value {
            JsonValue::Object(fields) => Ok(Obj {
                pos: json.pos,
                context,
                fields,
            }),
            other => Err(IrError::schema(
                json.pos,
                format!("{context} must be an object, found {}", other.kind_name()),
            )),
        }
    }

    fn get(&self, key: &str) -> Option<&'a Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn require(&self, key: &str) -> Result<&'a Json, IrError> {
        self.get(key).ok_or_else(|| {
            IrError::schema(
                self.pos,
                format!("{} is missing the required field `{key}`", self.context),
            )
        })
    }

    fn check_keys(&self, allowed: &[&str]) -> Result<(), IrError> {
        for (key, value) in self.fields {
            if !allowed.contains(&key.as_str()) {
                return Err(IrError::schema(
                    value.pos,
                    format!(
                        "unknown field `{key}` in {} (accepted fields: {})",
                        self.context,
                        allowed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }
}

fn as_str<'a>(json: &'a Json, what: &str) -> Result<&'a str, IrError> {
    match &json.value {
        JsonValue::Str(s) => Ok(s),
        other => Err(IrError::schema(
            json.pos,
            format!("{what} must be a string, found {}", other.kind_name()),
        )),
    }
}

fn as_index(json: &Json, what: &str) -> Result<usize, IrError> {
    match json.value {
        JsonValue::Int(v) if v >= 0 => Ok(v as usize),
        JsonValue::Int(v) => Err(IrError::schema(
            json.pos,
            format!("{what} must be non-negative, found {v}"),
        )),
        ref other => Err(IrError::schema(
            json.pos,
            format!("{what} must be an integer, found {}", other.kind_name()),
        )),
    }
}

fn as_array<'a>(json: &'a Json, what: &str) -> Result<&'a [Json], IrError> {
    match &json.value {
        JsonValue::Array(items) => Ok(items),
        other => Err(IrError::schema(
            json.pos,
            format!("{what} must be an array, found {}", other.kind_name()),
        )),
    }
}

fn parse_type(json: &Json) -> Result<DataType, IrError> {
    match as_str(json, "a type")? {
        "int" => Ok(DataType::Int),
        "double" => Ok(DataType::Double),
        "str" => Ok(DataType::Str),
        other => Err(IrError::schema(
            json.pos,
            format!("unknown type {other:?} (accepted: int, double, str)"),
        )),
    }
}

fn cmp_op_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn parse_cmp_op(json: &Json) -> Result<CmpOp, IrError> {
    match as_str(json, "a comparison operator")? {
        "eq" => Ok(CmpOp::Eq),
        "ne" => Ok(CmpOp::Ne),
        "lt" => Ok(CmpOp::Lt),
        "le" => Ok(CmpOp::Le),
        "gt" => Ok(CmpOp::Gt),
        "ge" => Ok(CmpOp::Ge),
        other => Err(IrError::schema(
            json.pos,
            format!("unknown comparison operator {other:?} (accepted: eq, ne, lt, le, gt, ge)"),
        )),
    }
}

/// Parse a typed literal: a single-field object `{"int": ...}`, `{"double": ...}`,
/// `{"str": ...}` or `{"null": null}`.
fn parse_literal(json: &Json) -> Result<Value, IrError> {
    let obj = Obj::new(json, "a literal")?;
    if obj.fields.len() != 1 {
        return Err(IrError::schema(
            json.pos,
            "a literal must be an object with exactly one field: int, double, str or null",
        ));
    }
    let (key, value) = &obj.fields[0];
    match (key.as_str(), &value.value) {
        ("int", JsonValue::Int(v)) => Ok(Value::Int(*v)),
        ("int", other) => Err(IrError::schema(
            value.pos,
            format!(
                "`int` literal must be an integer, found {}",
                other.kind_name()
            ),
        )),
        ("double", JsonValue::Double(v)) => Ok(Value::Double(*v)),
        ("double", JsonValue::Int(v)) => Ok(Value::Double(*v as f64)),
        ("double", other) => Err(IrError::schema(
            value.pos,
            format!(
                "`double` literal must be a number, found {}",
                other.kind_name()
            ),
        )),
        ("str", JsonValue::Str(s)) => Ok(Value::Str(s.clone())),
        ("str", other) => Err(IrError::schema(
            value.pos,
            format!(
                "`str` literal must be a string, found {}",
                other.kind_name()
            ),
        )),
        ("null", JsonValue::Null) => Ok(Value::Null),
        ("null", other) => Err(IrError::schema(
            value.pos,
            format!(
                "`null` literal takes JSON null, found {}",
                other.kind_name()
            ),
        )),
        (other, _) => Err(IrError::schema(
            json.pos,
            format!("unknown literal kind {other:?} (accepted: int, double, str, null)"),
        )),
    }
}

// ------------------------------------------------------------------ expressions

fn parse_expr(json: &Json) -> Result<IrExpr, IrError> {
    let obj = Obj::new(json, "an expression")?;
    if obj.fields.len() != 1 {
        return Err(IrError::schema(
            json.pos,
            "an expression must be an object with exactly one field (col, a literal kind, \
             an operator, or case)",
        ));
    }
    let (key, value) = &obj.fields[0];
    let pos = json.pos;
    let kind = match key.as_str() {
        "col" => ExprKind::Col(as_index(value, "`col`")?),
        "int" | "double" | "str" | "null" => ExprKind::Lit(parse_literal(json)?),
        "add" => parse_binary(value, |l, r| ExprKind::Arith(ArithOp::Add, l, r), "add")?,
        "sub" => parse_binary(value, |l, r| ExprKind::Arith(ArithOp::Sub, l, r), "sub")?,
        "mul" => parse_binary(value, |l, r| ExprKind::Arith(ArithOp::Mul, l, r), "mul")?,
        "div" => parse_binary(value, |l, r| ExprKind::Arith(ArithOp::Div, l, r), "div")?,
        "eq" => parse_binary(value, |l, r| ExprKind::Cmp(CmpOp::Eq, l, r), "eq")?,
        "ne" => parse_binary(value, |l, r| ExprKind::Cmp(CmpOp::Ne, l, r), "ne")?,
        "lt" => parse_binary(value, |l, r| ExprKind::Cmp(CmpOp::Lt, l, r), "lt")?,
        "le" => parse_binary(value, |l, r| ExprKind::Cmp(CmpOp::Le, l, r), "le")?,
        "gt" => parse_binary(value, |l, r| ExprKind::Cmp(CmpOp::Gt, l, r), "gt")?,
        "ge" => parse_binary(value, |l, r| ExprKind::Cmp(CmpOp::Ge, l, r), "ge")?,
        "and" => parse_variadic(value, pos, ExprKind::And, "and")?,
        "or" => parse_variadic(value, pos, ExprKind::Or, "or")?,
        "case" => {
            let case = Obj::new(value, "a `case` expression")?;
            case.check_keys(&["when", "then", "else"])?;
            ExprKind::Case(
                Box::new(parse_expr(case.require("when")?)?),
                Box::new(parse_expr(case.require("then")?)?),
                Box::new(parse_expr(case.require("else")?)?),
            )
        }
        other => {
            return Err(IrError::schema(
                json.pos,
                format!(
                    "unknown expression kind {other:?} (accepted: col, int, double, str, null, \
                     add, sub, mul, div, eq, ne, lt, le, gt, ge, and, or, case)"
                ),
            ))
        }
    };
    Ok(IrExpr { pos, kind })
}

fn parse_binary(
    json: &Json,
    build: impl Fn(Box<IrExpr>, Box<IrExpr>) -> ExprKind,
    name: &str,
) -> Result<ExprKind, IrError> {
    let items = as_array(json, &format!("`{name}`"))?;
    if items.len() != 2 {
        return Err(IrError::schema(
            json.pos,
            format!("`{name}` takes exactly two operands, found {}", items.len()),
        ));
    }
    Ok(build(
        Box::new(parse_expr(&items[0])?),
        Box::new(parse_expr(&items[1])?),
    ))
}

/// `and`/`or` take two or more operands and fold left:
/// `{"and": [a, b, c]}` parses as `and(and(a, b), c)`.
fn parse_variadic(
    json: &Json,
    pos: Pos,
    build: impl Fn(Box<IrExpr>, Box<IrExpr>) -> ExprKind,
    name: &str,
) -> Result<ExprKind, IrError> {
    let items = as_array(json, &format!("`{name}`"))?;
    if items.len() < 2 {
        return Err(IrError::schema(
            json.pos,
            format!(
                "`{name}` takes at least two operands, found {}",
                items.len()
            ),
        ));
    }
    let mut acc = parse_expr(&items[0])?;
    for item in &items[1..] {
        let rhs = parse_expr(item)?;
        acc = IrExpr {
            pos,
            kind: build(Box::new(acc), Box::new(rhs)),
        };
    }
    match acc.kind {
        kind @ (ExprKind::And(..) | ExprKind::Or(..)) => Ok(kind),
        _ => unreachable!("fold of >= 2 operands always ends in the connective"),
    }
}

// ------------------------------------------------------------------------ nodes

fn parse_node(json: &Json) -> Result<Node, IrError> {
    let obj = Obj::new(json, "a plan node")?;
    let op_json = obj.require("op")?;
    let op = as_str(op_json, "`op`")?;
    let pos = json.pos;
    match op {
        "scan" => {
            obj.check_keys(&["op", "relation", "columns", "predicates"])?;
            let relation = as_str(obj.require("relation")?, "`relation`")?.to_string();
            let columns_json = obj.require("columns")?;
            let columns: Vec<String> = as_array(columns_json, "`columns`")?
                .iter()
                .map(|c| Ok(as_str(c, "a column name")?.to_string()))
                .collect::<Result<_, IrError>>()?;
            if columns.is_empty() {
                return Err(IrError::schema(
                    columns_json.pos,
                    "a scan must project at least one column",
                ));
            }
            let predicates = match obj.get("predicates") {
                None => Vec::new(),
                Some(p) => as_array(p, "`predicates`")?
                    .iter()
                    .map(parse_predicate)
                    .collect::<Result<_, _>>()?,
            };
            Ok(Node::Scan {
                pos,
                relation,
                columns,
                predicates,
            })
        }
        "filter" => {
            obj.check_keys(&["op", "input", "predicate"])?;
            Ok(Node::Filter {
                pos,
                input: Box::new(parse_node(obj.require("input")?)?),
                predicate: parse_expr(obj.require("predicate")?)?,
            })
        }
        "project" => {
            obj.check_keys(&["op", "input", "exprs"])?;
            let exprs_json = obj.require("exprs")?;
            let exprs: Vec<TypedExpr> = as_array(exprs_json, "`exprs`")?
                .iter()
                .map(parse_typed_expr)
                .collect::<Result<_, _>>()?;
            if exprs.is_empty() {
                return Err(IrError::schema(
                    exprs_json.pos,
                    "a project must compute at least one expression",
                ));
            }
            Ok(Node::Project {
                pos,
                input: Box::new(parse_node(obj.require("input")?)?),
                exprs,
            })
        }
        "aggregate" => {
            obj.check_keys(&["op", "input", "groups", "aggregates"])?;
            let groups: Vec<TypedExpr> = as_array(obj.require("groups")?, "`groups`")?
                .iter()
                .map(parse_typed_expr)
                .collect::<Result<_, _>>()?;
            let aggregates: Vec<AggItem> = as_array(obj.require("aggregates")?, "`aggregates`")?
                .iter()
                .map(parse_aggregate)
                .collect::<Result<_, _>>()?;
            if groups.is_empty() && aggregates.is_empty() {
                return Err(IrError::schema(
                    pos,
                    "an aggregate needs at least one group or one aggregate",
                ));
            }
            Ok(Node::Aggregate {
                pos,
                input: Box::new(parse_node(obj.require("input")?)?),
                groups,
                aggregates,
            })
        }
        "join" => {
            obj.check_keys(&[
                "op",
                "type",
                "build",
                "probe",
                "build_keys",
                "probe_keys",
                "early_probe",
            ])?;
            let type_json = obj.require("type")?;
            let join_type = match as_str(type_json, "`type`")? {
                "inner" => JoinType::Inner,
                "semi" => JoinType::ProbeSemi,
                other => {
                    return Err(IrError::schema(
                        type_json.pos,
                        format!("unknown join type {other:?} (accepted: inner, semi)"),
                    ))
                }
            };
            let parse_keys = |key: &str| -> Result<Vec<usize>, IrError> {
                as_array(obj.require(key)?, &format!("`{key}`"))?
                    .iter()
                    .map(|k| as_index(k, "a key position"))
                    .collect()
            };
            let early_probe = match obj.get("early_probe") {
                None => false,
                Some(json) => match json.value {
                    JsonValue::Bool(b) => b,
                    ref other => {
                        return Err(IrError::schema(
                            json.pos,
                            format!(
                                "`early_probe` must be a boolean, found {}",
                                other.kind_name()
                            ),
                        ))
                    }
                },
            };
            Ok(Node::Join {
                pos,
                join_type,
                build: Box::new(parse_node(obj.require("build")?)?),
                probe: Box::new(parse_node(obj.require("probe")?)?),
                build_keys: parse_keys("build_keys")?,
                probe_keys: parse_keys("probe_keys")?,
                early_probe,
            })
        }
        "sort" => {
            obj.check_keys(&["op", "input", "keys", "limit"])?;
            let keys: Vec<SortKey> = as_array(obj.require("keys")?, "`keys`")?
                .iter()
                .map(parse_sort_key)
                .collect::<Result<_, _>>()?;
            let limit = match obj.get("limit") {
                None => None,
                Some(json) => Some(as_index(json, "`limit`")?),
            };
            Ok(Node::Sort {
                pos,
                input: Box::new(parse_node(obj.require("input")?)?),
                keys,
                limit,
            })
        }
        other => Err(IrError::schema(
            op_json.pos,
            format!(
                "unknown node kind {other:?} (accepted: scan, filter, project, aggregate, \
                 join, sort)"
            ),
        )),
    }
}

fn parse_typed_expr(json: &Json) -> Result<TypedExpr, IrError> {
    let obj = Obj::new(json, "a typed expression")?;
    obj.check_keys(&["expr", "type"])?;
    Ok(TypedExpr {
        expr: parse_expr(obj.require("expr")?)?,
        ty: parse_type(obj.require("type")?)?,
    })
}

fn parse_aggregate(json: &Json) -> Result<AggItem, IrError> {
    let obj = Obj::new(json, "an aggregate")?;
    obj.check_keys(&["func", "expr", "type"])?;
    let func_json = obj.require("func")?;
    let func = match as_str(func_json, "`func`")? {
        "sum" => AggFunc::Sum,
        "count" => AggFunc::Count,
        "count_star" => AggFunc::CountStar,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        other => {
            return Err(IrError::schema(
                func_json.pos,
                format!(
                    "unknown aggregate function {other:?} (accepted: sum, count, count_star, \
                     avg, min, max)"
                ),
            ))
        }
    };
    let expr = match obj.get("expr") {
        Some(e) => Some(parse_expr(e)?),
        None => None,
    };
    match (func, &expr) {
        (AggFunc::CountStar, Some(_)) => {
            return Err(IrError::schema(json.pos, "`count_star` takes no `expr`"))
        }
        (AggFunc::CountStar, None) => {}
        (_, None) => {
            return Err(IrError::schema(
                json.pos,
                "this aggregate function requires an `expr`",
            ))
        }
        (_, Some(_)) => {}
    }
    Ok(AggItem {
        pos: json.pos,
        func,
        expr,
        ty: parse_type(obj.require("type")?)?,
    })
}

fn parse_sort_key(json: &Json) -> Result<SortKey, IrError> {
    let obj = Obj::new(json, "a sort key")?;
    obj.check_keys(&["column", "order"])?;
    let column = as_index(obj.require("column")?, "`column`")?;
    let descending = match obj.get("order") {
        None => false,
        Some(order_json) => match as_str(order_json, "`order`")? {
            "asc" => false,
            "desc" => true,
            other => {
                return Err(IrError::schema(
                    order_json.pos,
                    format!("unknown sort order {other:?} (accepted: asc, desc)"),
                ))
            }
        },
    };
    Ok(SortKey { column, descending })
}

fn parse_predicate(json: &Json) -> Result<ScanPredicate, IrError> {
    let obj = Obj::new(json, "a scan predicate")?;
    obj.check_keys(&["column", "cmp", "value", "between", "is"])?;
    let column = as_str(obj.require("column")?, "`column`")?.to_string();
    let cmp = obj.get("cmp");
    let between = obj.get("between");
    let is = obj.get("is");
    let kind = match (cmp, between, is) {
        (Some(cmp_json), None, None) => {
            let op = parse_cmp_op(cmp_json)?;
            let value = parse_literal(obj.require("value")?)?;
            PredicateKind::Cmp(op, value)
        }
        (None, Some(between_json), None) => {
            if obj.get("value").is_some() {
                return Err(IrError::schema(
                    json.pos,
                    "`value` is only valid together with `cmp`",
                ));
            }
            let bounds = as_array(between_json, "`between`")?;
            if bounds.len() != 2 {
                return Err(IrError::schema(
                    between_json.pos,
                    format!("`between` takes [lo, hi], found {} values", bounds.len()),
                ));
            }
            PredicateKind::Between(parse_literal(&bounds[0])?, parse_literal(&bounds[1])?)
        }
        (None, None, Some(is_json)) => match as_str(is_json, "`is`")? {
            "null" => PredicateKind::IsNull,
            "not_null" => PredicateKind::IsNotNull,
            other => {
                return Err(IrError::schema(
                    is_json.pos,
                    format!("unknown `is` test {other:?} (accepted: null, not_null)"),
                ))
            }
        },
        _ => {
            return Err(IrError::schema(
                json.pos,
                "a scan predicate needs exactly one of `cmp` (+ `value`), `between`, or `is`",
            ))
        }
    };
    Ok(ScanPredicate {
        pos: json.pos,
        column,
        kind,
    })
}

// ---------------------------------------------------------------- serialization

fn j(value: JsonValue) -> Json {
    Json {
        pos: Pos { line: 0, col: 0 },
        value,
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    j(JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    ))
}

fn literal_json(value: &Value) -> Json {
    match value {
        Value::Null => obj(vec![("null", j(JsonValue::Null))]),
        Value::Int(v) => obj(vec![("int", j(JsonValue::Int(*v)))]),
        Value::Double(v) => obj(vec![("double", j(JsonValue::Double(*v)))]),
        Value::Str(s) => obj(vec![("str", j(JsonValue::Str(s.clone())))]),
    }
}

fn type_json(ty: DataType) -> Json {
    let name = match ty {
        DataType::Int => "int",
        DataType::Double => "double",
        DataType::Str => "str",
    };
    j(JsonValue::Str(name.into()))
}

fn expr_json(expr: &IrExpr) -> Json {
    let binary = |name: &str, lhs: &IrExpr, rhs: &IrExpr| {
        obj(vec![(
            name,
            j(JsonValue::Array(vec![expr_json(lhs), expr_json(rhs)])),
        )])
    };
    match &expr.kind {
        ExprKind::Col(idx) => obj(vec![("col", j(JsonValue::Int(*idx as i64)))]),
        ExprKind::Lit(value) => literal_json(value),
        ExprKind::Arith(op, lhs, rhs) => {
            let name = match op {
                ArithOp::Add => "add",
                ArithOp::Sub => "sub",
                ArithOp::Mul => "mul",
                ArithOp::Div => "div",
            };
            binary(name, lhs, rhs)
        }
        ExprKind::Cmp(op, lhs, rhs) => binary(cmp_op_name(*op), lhs, rhs),
        ExprKind::And(lhs, rhs) => binary("and", lhs, rhs),
        ExprKind::Or(lhs, rhs) => binary("or", lhs, rhs),
        ExprKind::Case(cond, then, otherwise) => obj(vec![(
            "case",
            obj(vec![
                ("when", expr_json(cond)),
                ("then", expr_json(then)),
                ("else", expr_json(otherwise)),
            ]),
        )]),
    }
}

fn typed_expr_json(te: &TypedExpr) -> Json {
    obj(vec![
        ("expr", expr_json(&te.expr)),
        ("type", type_json(te.ty)),
    ])
}

fn predicate_json(pred: &ScanPredicate) -> Json {
    let mut fields = vec![("column", j(JsonValue::Str(pred.column.clone())))];
    match &pred.kind {
        PredicateKind::Cmp(op, value) => {
            fields.push(("cmp", j(JsonValue::Str(cmp_op_name(*op).into()))));
            fields.push(("value", literal_json(value)));
        }
        PredicateKind::Between(lo, hi) => {
            fields.push((
                "between",
                j(JsonValue::Array(vec![literal_json(lo), literal_json(hi)])),
            ));
        }
        PredicateKind::IsNull => fields.push(("is", j(JsonValue::Str("null".into())))),
        PredicateKind::IsNotNull => fields.push(("is", j(JsonValue::Str("not_null".into())))),
    }
    obj(fields)
}

fn node_json(node: &Node) -> Json {
    match node {
        Node::Scan {
            relation,
            columns,
            predicates,
            ..
        } => {
            let mut fields = vec![
                ("op", j(JsonValue::Str("scan".into()))),
                ("relation", j(JsonValue::Str(relation.clone()))),
                (
                    "columns",
                    j(JsonValue::Array(
                        columns
                            .iter()
                            .map(|c| j(JsonValue::Str(c.clone())))
                            .collect(),
                    )),
                ),
            ];
            if !predicates.is_empty() {
                fields.push((
                    "predicates",
                    j(JsonValue::Array(
                        predicates.iter().map(predicate_json).collect(),
                    )),
                ));
            }
            obj(fields)
        }
        Node::Filter {
            input, predicate, ..
        } => obj(vec![
            ("op", j(JsonValue::Str("filter".into()))),
            ("input", node_json(input)),
            ("predicate", expr_json(predicate)),
        ]),
        Node::Project { input, exprs, .. } => obj(vec![
            ("op", j(JsonValue::Str("project".into()))),
            ("input", node_json(input)),
            (
                "exprs",
                j(JsonValue::Array(
                    exprs.iter().map(typed_expr_json).collect(),
                )),
            ),
        ]),
        Node::Aggregate {
            input,
            groups,
            aggregates,
            ..
        } => obj(vec![
            ("op", j(JsonValue::Str("aggregate".into()))),
            ("input", node_json(input)),
            (
                "groups",
                j(JsonValue::Array(
                    groups.iter().map(typed_expr_json).collect(),
                )),
            ),
            (
                "aggregates",
                j(JsonValue::Array(
                    aggregates
                        .iter()
                        .map(|agg| {
                            let func = match agg.func {
                                AggFunc::Sum => "sum",
                                AggFunc::Count => "count",
                                AggFunc::CountStar => "count_star",
                                AggFunc::Avg => "avg",
                                AggFunc::Min => "min",
                                AggFunc::Max => "max",
                            };
                            let mut fields = vec![("func", j(JsonValue::Str(func.into())))];
                            if let Some(expr) = &agg.expr {
                                fields.push(("expr", expr_json(expr)));
                            }
                            fields.push(("type", type_json(agg.ty)));
                            obj(fields)
                        })
                        .collect(),
                )),
            ),
        ]),
        Node::Join {
            join_type,
            build,
            probe,
            build_keys,
            probe_keys,
            early_probe,
            ..
        } => {
            let keys = |ks: &[usize]| {
                j(JsonValue::Array(
                    ks.iter().map(|&k| j(JsonValue::Int(k as i64))).collect(),
                ))
            };
            let mut fields = vec![
                ("op", j(JsonValue::Str("join".into()))),
                (
                    "type",
                    j(JsonValue::Str(
                        match join_type {
                            JoinType::Inner => "inner",
                            JoinType::ProbeSemi => "semi",
                        }
                        .into(),
                    )),
                ),
                ("build", node_json(build)),
                ("probe", node_json(probe)),
                ("build_keys", keys(build_keys)),
                ("probe_keys", keys(probe_keys)),
            ];
            if *early_probe {
                fields.push(("early_probe", j(JsonValue::Bool(true))));
            }
            obj(fields)
        }
        Node::Sort {
            input, keys, limit, ..
        } => {
            let mut fields = vec![
                ("op", j(JsonValue::Str("sort".into()))),
                ("input", node_json(input)),
                (
                    "keys",
                    j(JsonValue::Array(
                        keys.iter()
                            .map(|k| {
                                obj(vec![
                                    ("column", j(JsonValue::Int(k.column as i64))),
                                    (
                                        "order",
                                        j(JsonValue::Str(
                                            if k.descending { "desc" } else { "asc" }.into(),
                                        )),
                                    ),
                                ])
                            })
                            .collect(),
                    )),
                ),
            ];
            if let Some(limit) = limit {
                fields.push(("limit", j(JsonValue::Int(*limit as i64))));
            }
            obj(fields)
        }
    }
}

impl QueryIr {
    /// Serialize to the canonical pretty JSON form. `parse_ir(ir.to_pretty())`
    /// yields an equal IR (positions aside) — the round-trip tests pin this.
    pub fn to_pretty(&self) -> String {
        let doc = obj(vec![
            ("version", j(JsonValue::Int(self.version))),
            ("plan", node_json(&self.root)),
        ]);
        json::to_pretty(&doc.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"{
  "version": 1,
  "plan": {
    "op": "aggregate",
    "input": {
      "op": "scan",
      "relation": "t",
      "columns": ["qty", "price"],
      "predicates": [
        {"column": "qty", "between": [{"int": 1}, {"int": 9}]},
        {"column": "price", "cmp": "gt", "value": {"double": 0.5}},
        {"column": "price", "is": "not_null"}
      ]
    },
    "groups": [{"expr": {"col": 0}, "type": "int"}],
    "aggregates": [
      {"func": "count_star", "type": "int"},
      {"func": "sum", "expr": {"mul": [{"col": 1}, {"int": 2}]}, "type": "double"}
    ]
  }
}"#;

    #[test]
    fn parses_a_complete_document() {
        let ir = parse_ir(TINY).unwrap();
        assert_eq!(ir.version, 1);
        let Node::Aggregate {
            input,
            groups,
            aggregates,
            ..
        } = &ir.root
        else {
            panic!("expected aggregate root");
        };
        assert_eq!(groups.len(), 1);
        assert_eq!(aggregates.len(), 2);
        assert_eq!(aggregates[0].func, AggFunc::CountStar);
        assert!(aggregates[0].expr.is_none());
        let Node::Scan {
            relation,
            columns,
            predicates,
            ..
        } = input.as_ref()
        else {
            panic!("expected scan input");
        };
        assert_eq!(relation, "t");
        assert_eq!(columns, &["qty", "price"]);
        assert_eq!(predicates.len(), 3);
        assert_eq!(
            predicates[0].kind,
            PredicateKind::Between(Value::Int(1), Value::Int(9))
        );
        assert_eq!(
            predicates[1].kind,
            PredicateKind::Cmp(CmpOp::Gt, Value::Double(0.5))
        );
        assert_eq!(predicates[2].kind, PredicateKind::IsNotNull);
    }

    #[test]
    fn round_trips_through_the_serializer() {
        let ir = parse_ir(TINY).unwrap();
        let text = ir.to_pretty();
        let reparsed = parse_ir(&text).unwrap();
        assert_eq!(reparsed.to_pretty(), text);
    }

    #[test]
    fn bad_version_is_positioned() {
        let err = parse_ir("{\n  \"version\": 2,\n  \"plan\": {\"op\": \"scan\"}\n}").unwrap_err();
        assert_eq!(err.kind, crate::IrErrorKind::Schema);
        assert!(err.message.contains("unsupported IR version 2"), "{err}");
        assert_eq!(err.pos.line, 2, "{err}");
    }

    #[test]
    fn unknown_node_kind_is_positioned() {
        let err = parse_ir("{\"version\": 1,\n \"plan\": {\"op\": \"scann\"}}").unwrap_err();
        assert!(err.message.contains("unknown node kind \"scann\""), "{err}");
        assert_eq!(err.pos.line, 2, "{err}");
    }

    #[test]
    fn unknown_field_is_rejected() {
        let err = parse_ir(
            "{\"version\": 1, \"plan\": {\"op\": \"scan\", \"relation\": \"t\", \
             \"columns\": [\"a\"], \"morsels\": 4}}",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown field `morsels`"), "{err}");
    }

    #[test]
    fn and_folds_left() {
        let ir = parse_ir(
            r#"{"version": 1, "plan": {"op": "filter",
                "input": {"op": "scan", "relation": "t", "columns": ["a"]},
                "predicate": {"and": [{"col": 0}, {"int": 1}, {"int": 2}]}}}"#,
        )
        .unwrap();
        let Node::Filter { predicate, .. } = &ir.root else {
            panic!()
        };
        let ExprKind::And(lhs, _) = &predicate.kind else {
            panic!("outer and");
        };
        assert!(matches!(lhs.kind, ExprKind::And(..)), "left fold");
    }

    #[test]
    fn count_star_with_expr_rejected() {
        let err = parse_ir(
            r#"{"version": 1, "plan": {"op": "aggregate",
                "input": {"op": "scan", "relation": "t", "columns": ["a"]},
                "groups": [],
                "aggregates": [{"func": "count_star", "expr": {"col": 0}, "type": "int"}]}}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("count_star"), "{err}");
    }

    #[test]
    fn truncated_json_is_a_syntax_error() {
        let err = parse_ir("{\"version\": 1, \"plan\": {\"op\": \"sc").unwrap_err();
        assert_eq!(err.kind, crate::IrErrorKind::Syntax);
        assert!(err.message.contains("truncated"), "{err}");
    }
}
