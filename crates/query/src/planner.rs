//! The logical → physical planner.
//!
//! [`Planner::plan`] lowers a parsed [`QueryIr`] onto the operator vocabulary of
//! [`exec::ops`], resolving relation and column names against a
//! [`storage::Database`] catalog, checking the typing rules of
//! `crates/query/README.md`, and making the physical choices the hand-built
//! workload queries make today:
//!
//! - **Serial vs. morsel-parallel aggregation** — an `aggregate` whose input is a
//!   pure scan chain (`scan`, optionally followed by `filter`/`project`) runs as a
//!   [`exec::ops::ParallelHashAggregateOp`] over a morsel
//!   [`PipelineSpec`] whenever
//!   [`exec::morsel::effective_threads`] resolves the configured thread count to
//!   more than one worker; otherwise it runs as the serial
//!   [`exec::ops::HashAggregateOp`].
//! - **Parallel join build** — every hash join partitions its build side with
//!   [`exec::ops::HashJoinOp::with_parallel_build`] using the configured thread
//!   count (the operator itself falls back to a serial build for one worker).
//! - **SARGable push-down** — conjuncts of a `filter` directly above a `scan` of
//!   the form `column <cmp> constant` (with exactly matching types) move into the
//!   scan's [`Restriction`] list, where they are evaluated on compressed Data
//!   Blocks under SMA/PSMA pruning; a `>=`/`<=` pair on the same column merges
//!   into one `between`. Residual conjuncts stay behind as a filter operator.
//!
//! The resulting [`PhysicalPlan`] is self-contained (it borrows nothing): it can
//! be pretty-printed for golden-file review (`plan_dump`) and executed repeatedly
//! against any database with the same catalog.

use std::fmt;

use datablocks::scan::Restriction;
use datablocks::{DataType, Value};
use dbsimd::CmpOp;
use exec::morsel::{self, PipelineStep};
use exec::ops::{
    AggFunc, AggSpec, BoxedOperator, FilterOp, HashAggregateOp, HashJoinOp, JoinType,
    ParallelHashAggregateOp, ProjectOp, ScanOp, SortKey, SortOp,
};
use exec::{collect_operator, Batch, Expr, PipelineSpec, RelationScanner, ScanConfig, ScanMode};
use storage::Database;

use crate::error::IrError;
use crate::ir::{AggItem, ExprKind, IrExpr, Node, PredicateKind, QueryIr, TypedExpr};
use crate::json::Pos;

// ------------------------------------------------------------------ type checking

/// The inferred type of an expression: a concrete [`DataType`], or `Any` for
/// NULL literals (which take any declared type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ty {
    Known(DataType),
    Any,
}

pub(crate) fn type_name(ty: DataType) -> &'static str {
    match ty {
        DataType::Int => "int",
        DataType::Double => "double",
        DataType::Str => "str",
    }
}

fn ty_name(ty: Ty) -> &'static str {
    match ty {
        Ty::Known(t) => type_name(t),
        Ty::Any => "null",
    }
}

pub(crate) fn value_type(value: &Value) -> Ty {
    match value {
        Value::Null => Ty::Any,
        Value::Int(_) => Ty::Known(DataType::Int),
        Value::Double(_) => Ty::Known(DataType::Double),
        Value::Str(_) => Ty::Known(DataType::Str),
    }
}

/// Reject string operands where arithmetic/logic needs numbers.
fn require_numeric(ty: Ty, pos: Pos, what: &str) -> Result<Ty, IrError> {
    if ty == Ty::Known(DataType::Str) {
        return Err(IrError::semantic(
            pos,
            format!("{what} must be numeric, found str"),
        ));
    }
    Ok(ty)
}

/// Numeric result type of a non-division arithmetic: any double operand widens,
/// two ints stay int, NULLs stay undetermined.
fn combine_numeric(lhs: Ty, rhs: Ty) -> Ty {
    match (lhs, rhs) {
        (Ty::Known(DataType::Double), _) | (_, Ty::Known(DataType::Double)) => {
            Ty::Known(DataType::Double)
        }
        (Ty::Known(DataType::Int), Ty::Known(DataType::Int)) => Ty::Known(DataType::Int),
        _ => Ty::Any,
    }
}

/// Infer the type of `expr` over an input with the given column types.
pub(crate) fn infer_type(expr: &IrExpr, input: &[DataType]) -> Result<Ty, IrError> {
    match &expr.kind {
        ExprKind::Col(idx) => input.get(*idx).map(|t| Ty::Known(*t)).ok_or_else(|| {
            IrError::semantic(
                expr.pos,
                format!(
                    "column #{idx} is out of range (the input has {} columns)",
                    input.len()
                ),
            )
        }),
        ExprKind::Lit(value) => Ok(value_type(value)),
        ExprKind::Arith(op, lhs, rhs) => {
            let lt = require_numeric(infer_type(lhs, input)?, lhs.pos, "an arithmetic operand")?;
            let rt = require_numeric(infer_type(rhs, input)?, rhs.pos, "an arithmetic operand")?;
            // Division always widens to double (matching `exec::expr`); other
            // operators widen only when a double operand is involved.
            Ok(match op {
                exec::ArithOp::Div => Ty::Known(DataType::Double),
                _ => combine_numeric(lt, rt),
            })
        }
        ExprKind::Cmp(_, lhs, rhs) => {
            let lt = infer_type(lhs, input)?;
            let rt = infer_type(rhs, input)?;
            let string = |t: Ty| t == Ty::Known(DataType::Str);
            let number = |t: Ty| matches!(t, Ty::Known(DataType::Int | DataType::Double));
            if (string(lt) && number(rt)) || (number(lt) && string(rt)) {
                return Err(IrError::semantic(
                    expr.pos,
                    format!("cannot compare {} with {}", ty_name(lt), ty_name(rt)),
                ));
            }
            Ok(Ty::Known(DataType::Int))
        }
        ExprKind::And(lhs, rhs) | ExprKind::Or(lhs, rhs) => {
            require_numeric(infer_type(lhs, input)?, lhs.pos, "a logical operand")?;
            require_numeric(infer_type(rhs, input)?, rhs.pos, "a logical operand")?;
            Ok(Ty::Known(DataType::Int))
        }
        ExprKind::Case(cond, then, otherwise) => {
            require_numeric(infer_type(cond, input)?, cond.pos, "a case condition")?;
            let tt = infer_type(then, input)?;
            let et = infer_type(otherwise, input)?;
            match (tt, et) {
                (Ty::Any, t) | (t, Ty::Any) => Ok(t),
                (a, b) if a == b => Ok(a),
                (a, b) => Err(IrError::semantic(
                    expr.pos,
                    format!(
                        "case branches have mismatched types ({} vs {})",
                        ty_name(a),
                        ty_name(b)
                    ),
                )),
            }
        }
    }
}

/// Check an inferred type against a declared one (NULL literals accept any).
pub(crate) fn check_declared(
    inferred: Ty,
    declared: DataType,
    pos: Pos,
    what: &str,
) -> Result<(), IrError> {
    match inferred {
        Ty::Any => Ok(()),
        Ty::Known(t) if t == declared => Ok(()),
        Ty::Known(t) => Err(IrError::semantic(
            pos,
            format!(
                "{what} declares type {} but the expression has type {}",
                type_name(declared),
                type_name(t)
            ),
        )),
    }
}

// ----------------------------------------------------------------- physical plan

/// A resolved base-table scan: projection and restrictions by column index, with
/// rendered labels for the plan printer.
#[derive(Debug, Clone)]
struct TableScan {
    relation: String,
    projection: Vec<usize>,
    column_names: Vec<String>,
    restrictions: Vec<Restriction>,
    restriction_labels: Vec<String>,
    types: Vec<DataType>,
}

/// One node of the lowered physical plan.
#[derive(Debug, Clone)]
enum PhysNode {
    Scan(TableScan),
    Filter {
        input: Box<PhysNode>,
        predicate: Expr,
    },
    Project {
        input: Box<PhysNode>,
        exprs: Vec<Expr>,
        types: Vec<DataType>,
    },
    /// Serial hash aggregation over an arbitrary input.
    HashAggregate {
        input: Box<PhysNode>,
        groups: Vec<Expr>,
        group_types: Vec<DataType>,
        aggregates: Vec<AggSpec>,
        agg_labels: Vec<String>,
    },
    /// Morsel-parallel aggregation over a scan pipeline (scan + in-worker steps).
    MorselAggregate {
        scan: TableScan,
        steps: Vec<PipelineStep>,
        groups: Vec<Expr>,
        group_types: Vec<DataType>,
        aggregates: Vec<AggSpec>,
        agg_labels: Vec<String>,
    },
    HashJoin {
        join_type: JoinType,
        build: Box<PhysNode>,
        probe: Box<PhysNode>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        early_probe: bool,
    },
    Sort {
        input: Box<PhysNode>,
        keys: Vec<SortKey>,
        limit: Option<usize>,
    },
}

/// A fully resolved physical plan: the operator tree the planner chose, plus the
/// [`ScanConfig`] its choices were made for.
///
/// The plan owns all its state (relation *names*, column indices, expressions),
/// so it can be [`Display`](fmt::Display)ed for golden-file review and
/// [executed](PhysicalPlan::execute) repeatedly.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    config: ScanConfig,
    root: PhysNode,
    output_types: Vec<DataType>,
}

impl PhysicalPlan {
    /// Column types of the plan's output batch.
    pub fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    /// The scan configuration the plan was lowered for.
    pub fn config(&self) -> ScanConfig {
        self.config
    }

    /// Override the reorder-channel capacity the plan executes with (used by the
    /// query service to derive back-pressure from a session's memory budget).
    /// Planning decisions are unaffected — the channel cap only bounds how many
    /// morsel batches may be in flight per scan.
    pub fn with_channel_cap(mut self, channel_cap: usize) -> PhysicalPlan {
        self.config.channel_cap = channel_cap;
        self
    }

    /// Build the operator tree and drain it to a single output batch.
    ///
    /// # Panics
    ///
    /// Panics if `db` lacks a relation the plan scans — plans are validated
    /// against the catalog they were planned with, so execute against the same
    /// database (or one with the same schema).
    pub fn execute(&self, db: &Database) -> Batch {
        let mut op = build_operator(&self.root, db, self.config);
        collect_operator(op.as_mut())
    }

    /// Instantiate the plan's operator tree against `db` without draining it —
    /// the entry point for pull-based execution ([`crate::QueryStream`] pulls
    /// one batch at a time). The returned tree borrows only the database; the
    /// plan itself can be dropped afterwards.
    pub(crate) fn build_tree<'a>(&self, db: &'a Database) -> BoxedOperator<'a> {
        build_operator(&self.root, db, self.config)
    }
}

/// Recursively instantiate `exec` operators for a plan node.
fn build_operator<'a>(node: &PhysNode, db: &'a Database, config: ScanConfig) -> BoxedOperator<'a> {
    match node {
        PhysNode::Scan(scan) => {
            let relation = db.relation(&scan.relation);
            Box::new(ScanOp::new(RelationScanner::new(
                relation,
                scan.projection.clone(),
                scan.restrictions.clone(),
                config,
            )))
        }
        PhysNode::Filter { input, predicate } => Box::new(FilterOp::new(
            build_operator(input, db, config),
            predicate.clone(),
        )),
        PhysNode::Project {
            input,
            exprs,
            types,
        } => Box::new(ProjectOp::new(
            build_operator(input, db, config),
            exprs.clone(),
            types.clone(),
        )),
        PhysNode::HashAggregate {
            input,
            groups,
            group_types,
            aggregates,
            ..
        } => Box::new(HashAggregateOp::new(
            build_operator(input, db, config),
            groups.clone(),
            group_types.clone(),
            aggregates.clone(),
        )),
        PhysNode::MorselAggregate {
            scan,
            steps,
            groups,
            group_types,
            aggregates,
            ..
        } => {
            let relation = db.relation(&scan.relation);
            let mut spec =
                PipelineSpec::scan(scan.projection.clone(), scan.restrictions.clone(), config);
            spec.steps = steps.clone();
            Box::new(ParallelHashAggregateOp::over_relation(
                relation,
                spec,
                groups.clone(),
                group_types.clone(),
                aggregates.clone(),
            ))
        }
        PhysNode::HashJoin {
            join_type,
            build,
            probe,
            build_keys,
            probe_keys,
            early_probe,
        } => Box::new(
            HashJoinOp::new(
                build_operator(build, db, config),
                build_operator(probe, db, config),
                build_keys.clone(),
                probe_keys.clone(),
                *join_type,
            )
            .with_parallel_build(config.threads)
            .with_early_probe(*early_probe),
        ),
        PhysNode::Sort { input, keys, limit } => Box::new(SortOp::new(
            build_operator(input, db, config),
            keys.clone(),
            *limit,
        )),
    }
}

// ---------------------------------------------------------------------- planner

/// Lowers parsed [`QueryIr`] documents to [`PhysicalPlan`]s against one
/// database catalog and one [`ScanConfig`].
pub struct Planner<'a> {
    db: &'a Database,
    config: ScanConfig,
}

impl<'a> Planner<'a> {
    /// A planner resolving names against `db` and choosing operators for
    /// `config` (scan flavour, worker threads, morsel size).
    pub fn new(db: &'a Database, config: ScanConfig) -> Planner<'a> {
        Planner { db, config }
    }

    /// Lower a logical plan to a physical one, or fail with a positioned
    /// [`IrError`] of kind `Semantic`.
    pub fn plan(&self, ir: &QueryIr) -> Result<PhysicalPlan, IrError> {
        let (root, output_types) = self.plan_node(&ir.root)?;
        Ok(PhysicalPlan {
            config: self.config,
            root,
            output_types,
        })
    }

    fn plan_node(&self, node: &Node) -> Result<(PhysNode, Vec<DataType>), IrError> {
        match node {
            Node::Scan {
                pos,
                relation,
                columns,
                predicates,
            } => self.plan_scan(*pos, relation, columns, predicates),
            Node::Filter {
                input, predicate, ..
            } => self.plan_filter(input, predicate),
            Node::Project { input, exprs, .. } => {
                let (phys, in_types) = self.plan_node(input)?;
                let (out_exprs, out_types) =
                    self.check_typed_exprs(exprs, &in_types, "a projected expression")?;
                Ok((
                    PhysNode::Project {
                        input: Box::new(phys),
                        exprs: out_exprs,
                        types: out_types.clone(),
                    },
                    out_types,
                ))
            }
            Node::Aggregate {
                input,
                groups,
                aggregates,
                ..
            } => self.plan_aggregate(input, groups, aggregates),
            Node::Join {
                pos,
                join_type,
                build,
                probe,
                build_keys,
                probe_keys,
                early_probe,
            } => {
                let (build_phys, build_types) = self.plan_node(build)?;
                let (probe_phys, probe_types) = self.plan_node(probe)?;
                if build_keys.is_empty() || build_keys.len() != probe_keys.len() {
                    return Err(IrError::semantic(
                        *pos,
                        format!(
                            "join keys must pair up non-empty ({} build keys vs {} probe keys)",
                            build_keys.len(),
                            probe_keys.len()
                        ),
                    ));
                }
                for (&b, &p) in build_keys.iter().zip(probe_keys) {
                    let bt = *build_types.get(b).ok_or_else(|| {
                        IrError::semantic(
                            *pos,
                            format!(
                                "build key #{b} is out of range (the build side has {} columns)",
                                build_types.len()
                            ),
                        )
                    })?;
                    let pt = *probe_types.get(p).ok_or_else(|| {
                        IrError::semantic(
                            *pos,
                            format!(
                                "probe key #{p} is out of range (the probe side has {} columns)",
                                probe_types.len()
                            ),
                        )
                    })?;
                    if bt != pt {
                        return Err(IrError::semantic(
                            *pos,
                            format!(
                                "join key type mismatch: build column #{b} is {} but probe \
                                 column #{p} is {}",
                                type_name(bt),
                                type_name(pt)
                            ),
                        ));
                    }
                }
                let output_types = match join_type {
                    JoinType::Inner => {
                        let mut t = build_types;
                        t.extend(probe_types);
                        t
                    }
                    JoinType::ProbeSemi => probe_types,
                };
                Ok((
                    PhysNode::HashJoin {
                        join_type: *join_type,
                        build: Box::new(build_phys),
                        probe: Box::new(probe_phys),
                        build_keys: build_keys.clone(),
                        probe_keys: probe_keys.clone(),
                        early_probe: *early_probe,
                    },
                    output_types,
                ))
            }
            Node::Sort {
                pos,
                input,
                keys,
                limit,
            } => {
                let (phys, types) = self.plan_node(input)?;
                for key in keys {
                    if key.column >= types.len() {
                        return Err(IrError::semantic(
                            *pos,
                            format!(
                                "sort key column #{} is out of range (the input has {} columns)",
                                key.column,
                                types.len()
                            ),
                        ));
                    }
                }
                Ok((
                    PhysNode::Sort {
                        input: Box::new(phys),
                        keys: keys.clone(),
                        limit: *limit,
                    },
                    types,
                ))
            }
        }
    }

    fn plan_scan(
        &self,
        pos: Pos,
        relation: &str,
        columns: &[String],
        predicates: &[crate::ir::ScanPredicate],
    ) -> Result<(PhysNode, Vec<DataType>), IrError> {
        if !self.db.contains(relation) {
            return Err(IrError::semantic(
                pos,
                format!("unknown relation {relation:?}"),
            ));
        }
        let schema = self.db.relation(relation).schema();
        let mut projection = Vec::with_capacity(columns.len());
        let mut types = Vec::with_capacity(columns.len());
        for name in columns {
            let idx = schema.index_of(name).ok_or_else(|| {
                IrError::semantic(pos, format!("relation {relation:?} has no column {name:?}"))
            })?;
            projection.push(idx);
            types.push(schema.column(idx).data_type);
        }
        let mut restrictions = Vec::with_capacity(predicates.len());
        let mut restriction_labels = Vec::with_capacity(predicates.len());
        for pred in predicates {
            let idx = schema.index_of(&pred.column).ok_or_else(|| {
                IrError::semantic(
                    pred.pos,
                    format!("relation {relation:?} has no column {:?}", pred.column),
                )
            })?;
            let col_ty = schema.column(idx).data_type;
            let check_literal = |value: &Value| -> Result<(), IrError> {
                match value_type(value) {
                    Ty::Known(t) if t == col_ty => Ok(()),
                    other => Err(IrError::semantic(
                        pred.pos,
                        format!(
                            "predicate on column {:?} compares a {} column with a {} literal",
                            pred.column,
                            type_name(col_ty),
                            ty_name(other)
                        ),
                    )),
                }
            };
            let restriction = match &pred.kind {
                PredicateKind::Cmp(op, value) => {
                    check_literal(value)?;
                    Restriction::Cmp {
                        column: idx,
                        op: *op,
                        value: value.clone(),
                    }
                }
                PredicateKind::Between(lo, hi) => {
                    check_literal(lo)?;
                    check_literal(hi)?;
                    Restriction::Between {
                        column: idx,
                        lo: lo.clone(),
                        hi: hi.clone(),
                    }
                }
                PredicateKind::IsNull => Restriction::IsNull { column: idx },
                PredicateKind::IsNotNull => Restriction::IsNotNull { column: idx },
            };
            restriction_labels.push(restriction_label(&pred.column, &restriction, false));
            restrictions.push(restriction);
        }
        Ok((
            PhysNode::Scan(TableScan {
                relation: relation.to_string(),
                projection,
                column_names: columns.to_vec(),
                restrictions,
                restriction_labels,
                types: types.clone(),
            }),
            types,
        ))
    }

    fn plan_filter(
        &self,
        input: &Node,
        predicate: &IrExpr,
    ) -> Result<(PhysNode, Vec<DataType>), IrError> {
        let (phys, types) = self.plan_node(input)?;
        let ty = infer_type(predicate, &types)?;
        if ty == Ty::Known(DataType::Str) {
            return Err(IrError::semantic(
                predicate.pos,
                "a filter predicate must be numeric (comparisons yield 1/0), found str",
            ));
        }
        match phys {
            PhysNode::Scan(mut scan) => {
                let mut conjuncts = Vec::new();
                split_conjuncts(predicate, &mut conjuncts);
                let mut pushed = Vec::new();
                let mut residual = Vec::new();
                for conjunct in conjuncts {
                    match as_sargable(conjunct, &scan) {
                        Some(restriction) => pushed.push(restriction),
                        None => residual.push(conjunct),
                    }
                }
                merge_ranges(&mut pushed);
                let schema = self.db.relation(&scan.relation).schema();
                for restriction in pushed {
                    scan.restriction_labels.push(restriction_label(
                        &schema.column(restriction.column()).name,
                        &restriction,
                        true,
                    ));
                    scan.restrictions.push(restriction);
                }
                let scan = PhysNode::Scan(scan);
                if residual.is_empty() {
                    return Ok((scan, types));
                }
                let mut iter = residual.into_iter();
                let mut expr = iter.next().expect("non-empty residual").to_exec();
                for conjunct in iter {
                    expr = Expr::And(Box::new(expr), Box::new(conjunct.to_exec()));
                }
                Ok((
                    PhysNode::Filter {
                        input: Box::new(scan),
                        predicate: expr,
                    },
                    types,
                ))
            }
            other => Ok((
                PhysNode::Filter {
                    input: Box::new(other),
                    predicate: predicate.to_exec(),
                },
                types,
            )),
        }
    }

    fn plan_aggregate(
        &self,
        input: &Node,
        groups: &[TypedExpr],
        aggregates: &[AggItem],
    ) -> Result<(PhysNode, Vec<DataType>), IrError> {
        let (phys, in_types) = self.plan_node(input)?;
        let (group_exprs, group_types) =
            self.check_typed_exprs(groups, &in_types, "a group key")?;
        let mut specs = Vec::with_capacity(aggregates.len());
        let mut agg_labels = Vec::with_capacity(aggregates.len());
        let mut output_types = group_types.clone();
        for agg in aggregates {
            let spec = lower_aggregate(agg, &in_types)?;
            agg_labels.push(aggregate_label(agg));
            specs.push(spec);
            output_types.push(agg.ty);
        }
        let node = if morsel::effective_threads(self.config.threads) != 1 {
            // A scan-chain input runs the whole build phase morsel-parallel, like
            // the hand-built scan-dominated queries; anything else (e.g. a join
            // output) aggregates serially over the streamed input.
            match into_pipeline(phys) {
                Ok((scan, steps)) => PhysNode::MorselAggregate {
                    scan,
                    steps,
                    groups: group_exprs,
                    group_types,
                    aggregates: specs,
                    agg_labels,
                },
                Err(phys) => PhysNode::HashAggregate {
                    input: phys,
                    groups: group_exprs,
                    group_types,
                    aggregates: specs,
                    agg_labels,
                },
            }
        } else {
            PhysNode::HashAggregate {
                input: Box::new(phys),
                groups: group_exprs,
                group_types,
                aggregates: specs,
                agg_labels,
            }
        };
        Ok((node, output_types))
    }

    fn check_typed_exprs(
        &self,
        exprs: &[TypedExpr],
        input: &[DataType],
        what: &str,
    ) -> Result<(Vec<Expr>, Vec<DataType>), IrError> {
        let mut out_exprs = Vec::with_capacity(exprs.len());
        let mut out_types = Vec::with_capacity(exprs.len());
        for te in exprs {
            let inferred = infer_type(&te.expr, input)?;
            check_declared(inferred, te.ty, te.expr.pos, what)?;
            out_exprs.push(te.expr.to_exec());
            out_types.push(te.ty);
        }
        Ok((out_exprs, out_types))
    }
}

/// Type-check one aggregate and lower it to an [`AggSpec`].
fn lower_aggregate(agg: &AggItem, input: &[DataType]) -> Result<AggSpec, IrError> {
    let expr_ty = match &agg.expr {
        Some(expr) => Some(infer_type(expr, input)?),
        None => None,
    };
    match agg.func {
        AggFunc::CountStar | AggFunc::Count => {
            if agg.ty != DataType::Int {
                return Err(IrError::semantic(
                    agg.pos,
                    format!("counts are int, not {}", type_name(agg.ty)),
                ));
            }
        }
        AggFunc::Avg => {
            let ty = expr_ty.expect("parser enforces expr presence");
            require_numeric(ty, agg.pos, "an avg argument")?;
            if agg.ty != DataType::Double {
                return Err(IrError::semantic(
                    agg.pos,
                    format!("avg yields double, not {}", type_name(agg.ty)),
                ));
            }
        }
        AggFunc::Sum => {
            let ty = expr_ty.expect("parser enforces expr presence");
            require_numeric(ty, agg.pos, "a sum argument")?;
            check_declared(ty, agg.ty, agg.pos, "the sum")?;
        }
        AggFunc::Min | AggFunc::Max => {
            let ty = expr_ty.expect("parser enforces expr presence");
            check_declared(ty, agg.ty, agg.pos, "the min/max")?;
        }
    }
    // `count_star` ignores its expression; a constant matches the hand-built plans.
    let expr = match &agg.expr {
        Some(expr) => expr.to_exec(),
        None => Expr::lit(0i64),
    };
    Ok(AggSpec::new(agg.func, expr, agg.ty))
}

/// Flatten the left-folded `and` spine of a predicate into its conjuncts.
fn split_conjuncts<'e>(expr: &'e IrExpr, out: &mut Vec<&'e IrExpr>) {
    if let ExprKind::And(lhs, rhs) = &expr.kind {
        split_conjuncts(lhs, out);
        split_conjuncts(rhs, out);
    } else {
        out.push(expr);
    }
}

/// Is a conjunct of the form `column <cmp> constant` (either operand order) with
/// exactly matching types? Then it can run inside the scan as a [`Restriction`]
/// on the *base* column backing the scan's projected column.
fn as_sargable(conjunct: &IrExpr, scan: &TableScan) -> Option<Restriction> {
    let ExprKind::Cmp(op, lhs, rhs) = &conjunct.kind else {
        return None;
    };
    let (col, value, op) = match (&lhs.kind, &rhs.kind) {
        (ExprKind::Col(col), ExprKind::Lit(value)) => (*col, value, *op),
        (ExprKind::Lit(value), ExprKind::Col(col)) => (*col, value, flip(*op)),
        _ => return None,
    };
    let col_ty = *scan.types.get(col)?;
    if value_type(value) != Ty::Known(col_ty) {
        return None;
    }
    Some(Restriction::Cmp {
        column: scan.projection[col],
        op,
        value: value.clone(),
    })
}

/// Mirror a comparison for swapped operands (`5 <= x` ⇒ `x >= 5`).
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Merge a pushed `>= lo` / `<= hi` pair on the same column into one inclusive
/// `between` (which the scan kernels evaluate in a single pass and the PSMA
/// prunes as one range). The merged restriction takes the earlier pair member's
/// position.
fn merge_ranges(pushed: &mut Vec<Restriction>) {
    let mut i = 0;
    while i < pushed.len() {
        let (column, want, have_lo) = match &pushed[i] {
            Restriction::Cmp {
                column,
                op: CmpOp::Ge,
                ..
            } => (*column, CmpOp::Le, true),
            Restriction::Cmp {
                column,
                op: CmpOp::Le,
                ..
            } => (*column, CmpOp::Ge, false),
            _ => {
                i += 1;
                continue;
            }
        };
        let partner = pushed[i + 1..].iter().position(
            |r| matches!(r, Restriction::Cmp { column: c, op, .. } if *c == column && *op == want),
        );
        let Some(offset) = partner else {
            i += 1;
            continue;
        };
        let j = i + 1 + offset;
        let Restriction::Cmp { value: other, .. } = pushed.remove(j) else {
            unreachable!("partner is a Cmp by construction");
        };
        let Restriction::Cmp { value: own, .. } = pushed[i].clone() else {
            unreachable!("pushed[i] is a Cmp by construction");
        };
        let (lo, hi) = if have_lo { (own, other) } else { (other, own) };
        pushed[i] = Restriction::Between { column, lo, hi };
        i += 1;
    }
}

/// Peel a scan chain (`scan` under any stack of `filter`/`project`) into the
/// scan plus in-worker pipeline steps; give the node back unchanged otherwise.
fn into_pipeline(node: PhysNode) -> Result<(TableScan, Vec<PipelineStep>), Box<PhysNode>> {
    match node {
        PhysNode::Scan(scan) => Ok((scan, Vec::new())),
        PhysNode::Filter { input, predicate } => match into_pipeline(*input) {
            Ok((scan, mut steps)) => {
                steps.push(PipelineStep::Filter(predicate));
                Ok((scan, steps))
            }
            Err(inner) => Err(Box::new(PhysNode::Filter {
                input: inner,
                predicate,
            })),
        },
        PhysNode::Project {
            input,
            exprs,
            types,
        } => match into_pipeline(*input) {
            Ok((scan, mut steps)) => {
                steps.push(PipelineStep::Project { exprs, types });
                Ok((scan, steps))
            }
            Err(inner) => Err(Box::new(PhysNode::Project {
                input: inner,
                exprs,
                types,
            })),
        },
        other => Err(Box::new(other)),
    }
}

// -------------------------------------------------------------------- rendering

fn value_str(value: &Value) -> String {
    match value {
        Value::Null => "null".to_string(),
        Value::Int(v) => format!("{v}"),
        Value::Double(v) => format!("{v:?}"),
        Value::Str(s) => format!("{s:?}"),
    }
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn restriction_label(column: &str, restriction: &Restriction, pushed: bool) -> String {
    let mut label = match restriction {
        Restriction::Cmp { op, value, .. } => {
            format!("{column} {} {}", cmp_symbol(*op), value_str(value))
        }
        Restriction::Between { lo, hi, .. } => {
            format!("{column} between {} and {}", value_str(lo), value_str(hi))
        }
        Restriction::IsNull { .. } => format!("{column} is null"),
        Restriction::IsNotNull { .. } => format!("{column} is not null"),
    };
    if pushed {
        label.push_str(" (pushed)");
    }
    label
}

/// Binding strength for the expression printer (higher binds tighter).
fn precedence(expr: &Expr) -> u8 {
    match expr {
        Expr::Or(..) => 1,
        Expr::And(..) => 2,
        Expr::Cmp(..) => 3,
        Expr::Arith(exec::ArithOp::Add | exec::ArithOp::Sub, ..) => 4,
        Expr::Arith(exec::ArithOp::Mul | exec::ArithOp::Div, ..) => 5,
        _ => 6,
    }
}

fn write_expr(out: &mut String, expr: &Expr, min_prec: u8) {
    let prec = precedence(expr);
    let parens = prec < min_prec;
    if parens {
        out.push('(');
    }
    match expr {
        Expr::Col(idx) => out.push_str(&format!("#{idx}")),
        Expr::Const(value) => out.push_str(&value_str(value)),
        Expr::Arith(op, lhs, rhs) => {
            let symbol = match op {
                exec::ArithOp::Add => " + ",
                exec::ArithOp::Sub => " - ",
                exec::ArithOp::Mul => " * ",
                exec::ArithOp::Div => " / ",
            };
            write_expr(out, lhs, prec);
            out.push_str(symbol);
            write_expr(out, rhs, prec + 1);
        }
        Expr::Cmp(op, lhs, rhs) => {
            write_expr(out, lhs, prec);
            out.push(' ');
            out.push_str(cmp_symbol(*op));
            out.push(' ');
            write_expr(out, rhs, prec + 1);
        }
        Expr::And(lhs, rhs) => {
            write_expr(out, lhs, prec);
            out.push_str(" and ");
            write_expr(out, rhs, prec + 1);
        }
        Expr::Or(lhs, rhs) => {
            write_expr(out, lhs, prec);
            out.push_str(" or ");
            write_expr(out, rhs, prec + 1);
        }
        Expr::Case(cond, then, otherwise) => {
            out.push_str("case(");
            write_expr(out, cond, 0);
            out.push_str(", ");
            write_expr(out, then, 0);
            out.push_str(", ");
            write_expr(out, otherwise, 0);
            out.push(')');
        }
    }
    if parens {
        out.push(')');
    }
}

fn expr_str(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

fn aggregate_label(agg: &AggItem) -> String {
    let func = match agg.func {
        AggFunc::Sum => "sum",
        AggFunc::Count => "count",
        AggFunc::CountStar => "count",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    };
    let arg = match &agg.expr {
        Some(expr) => expr_str(&expr.to_exec()),
        None => "*".to_string(),
    };
    format!("{func}({arg}):{}", type_name(agg.ty))
}

fn exprs_label(exprs: &[Expr]) -> String {
    exprs.iter().map(expr_str).collect::<Vec<_>>().join(", ")
}

fn scan_label(scan: &TableScan) -> String {
    let mut label = format!(
        "scan {} cols=[{}]",
        scan.relation,
        scan.column_names.join(", ")
    );
    if !scan.restriction_labels.is_empty() {
        label.push_str(&format!(" preds=[{}]", scan.restriction_labels.join(", ")));
    }
    label
}

fn step_label(step: &PipelineStep) -> String {
    match step {
        PipelineStep::Filter(predicate) => format!("filter {}", expr_str(predicate)),
        PipelineStep::Project { exprs, types } => {
            let cols: Vec<String> = exprs
                .iter()
                .zip(types)
                .map(|(e, t)| format!("{}:{}", expr_str(e), type_name(*t)))
                .collect();
            format!("project [{}]", cols.join(", "))
        }
    }
}

struct DisplayNode {
    label: String,
    children: Vec<DisplayNode>,
}

fn display_tree(node: &PhysNode, threads: usize) -> DisplayNode {
    match node {
        PhysNode::Scan(scan) => DisplayNode {
            label: scan_label(scan),
            children: Vec::new(),
        },
        PhysNode::Filter { input, predicate } => DisplayNode {
            label: format!("filter {}", expr_str(predicate)),
            children: vec![display_tree(input, threads)],
        },
        PhysNode::Project {
            input,
            exprs,
            types,
        } => DisplayNode {
            label: step_label(&PipelineStep::Project {
                exprs: exprs.clone(),
                types: types.clone(),
            }),
            children: vec![display_tree(input, threads)],
        },
        PhysNode::HashAggregate {
            input,
            groups,
            agg_labels,
            ..
        } => DisplayNode {
            label: format!(
                "hash-aggregate groups=[{}] aggs=[{}]",
                exprs_label(groups),
                agg_labels.join(", ")
            ),
            children: vec![display_tree(input, threads)],
        },
        PhysNode::MorselAggregate {
            scan,
            steps,
            groups,
            agg_labels,
            ..
        } => {
            let mut chain = DisplayNode {
                label: scan_label(scan),
                children: Vec::new(),
            };
            for step in steps {
                chain = DisplayNode {
                    label: step_label(step),
                    children: vec![chain],
                };
            }
            DisplayNode {
                label: format!(
                    "morsel-aggregate workers={threads} groups=[{}] aggs=[{}]",
                    exprs_label(groups),
                    agg_labels.join(", ")
                ),
                children: vec![chain],
            }
        }
        PhysNode::HashJoin {
            join_type,
            build,
            probe,
            build_keys,
            probe_keys,
            early_probe,
        } => {
            let kind = match join_type {
                JoinType::Inner => "inner",
                JoinType::ProbeSemi => "semi",
            };
            let mut label = format!(
                "hash-join {kind} build_keys={build_keys:?} probe_keys={probe_keys:?} \
                 parallel_build={threads}"
            );
            if *early_probe {
                label.push_str(" early_probe");
            }
            let mut build_child = display_tree(build, threads);
            build_child.label = format!("build: {}", build_child.label);
            let mut probe_child = display_tree(probe, threads);
            probe_child.label = format!("probe: {}", probe_child.label);
            DisplayNode {
                label,
                children: vec![build_child, probe_child],
            }
        }
        PhysNode::Sort { input, keys, limit } => {
            let key_labels: Vec<String> = keys
                .iter()
                .map(|k| {
                    format!(
                        "#{} {}",
                        k.column,
                        if k.descending { "desc" } else { "asc" }
                    )
                })
                .collect();
            let mut label = format!("sort keys=[{}]", key_labels.join(", "));
            if let Some(limit) = limit {
                label.push_str(&format!(" limit={limit}"));
            }
            DisplayNode {
                label,
                children: vec![display_tree(input, threads)],
            }
        }
    }
}

fn write_children(f: &mut fmt::Formatter<'_>, node: &DisplayNode, prefix: &str) -> fmt::Result {
    for (i, child) in node.children.iter().enumerate() {
        let last = i + 1 == node.children.len();
        writeln!(
            f,
            "{prefix}{}{}",
            if last { "└─ " } else { "├─ " },
            child.label
        )?;
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        write_children(f, child, &child_prefix)?;
    }
    Ok(())
}

impl fmt::Display for PhysicalPlan {
    /// Renders the plan as an indented tree — the format the `plan_dump` golden
    /// files pin in CI. Machine-independent for explicit thread counts
    /// (`threads=0` resolves to the hardware only at execution time).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.config.mode {
            ScanMode::Jit => "jit",
            ScanMode::Vectorized { sarg: true } => "vectorized+sarg",
            ScanMode::Vectorized { sarg: false } => "vectorized",
        };
        writeln!(
            f,
            "physical plan (threads={}, mode={mode}, psma={})",
            self.config.threads, self.config.options.use_psma
        )?;
        let tree = display_tree(&self.root, self.config.threads);
        writeln!(f, "{}", tree.label)?;
        write_children(f, &tree, "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_ir;
    use crate::IrErrorKind;
    use storage::{ColumnDef, Relation, Schema};

    fn tiny_db() -> Database {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("qty", DataType::Int),
            ColumnDef::new("price", DataType::Int),
            ColumnDef::new("tag", DataType::Str),
        ]);
        let mut rel = Relation::with_chunk_capacity("t", schema, 512);
        for i in 0..2_000i64 {
            rel.insert(vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Int(100 + i % 900),
                Value::Str(if i % 3 == 0 { "A" } else { "B" }.to_string()),
            ]);
        }
        rel.freeze_all();
        let mut db = Database::new();
        db.add_relation(rel);
        db
    }

    fn plan_text(db: &Database, config: ScanConfig, text: &str) -> PhysicalPlan {
        let ir = parse_ir(text).unwrap();
        Planner::new(db, config).plan(&ir).unwrap()
    }

    const COUNT_WHERE: &str = r#"{
      "version": 1,
      "plan": {
        "op": "aggregate",
        "input": {
          "op": "filter",
          "input": {"op": "scan", "relation": "t", "columns": ["qty", "price"]},
          "predicate": {"and": [
            {"ge": [{"col": 0}, {"int": 10}]},
            {"le": [{"col": 0}, {"int": 19}]},
            {"ne": [{"col": 1}, {"col": 0}]}
          ]}
        },
        "groups": [],
        "aggregates": [{"func": "count_star", "type": "int"}]
      }
    }"#;

    #[test]
    fn pushdown_merges_range_pairs_and_keeps_residual() {
        let db = tiny_db();
        let plan = plan_text(&db, ScanConfig::default(), COUNT_WHERE);
        let rendered = plan.to_string();
        assert!(
            rendered.contains("qty between 10 and 19 (pushed)"),
            "{rendered}"
        );
        assert!(rendered.contains("filter #1 != #0"), "{rendered}");
        // 2000 rows, qty = i % 50: ids with qty in 10..=19 → 10 per 50 → 400 rows;
        // minus rows where price == qty (price >= 100 > 49, never) → 400.
        let batch = plan.execute(&db);
        assert_eq!(batch.value(0, 0), Value::Int(400));
    }

    #[test]
    fn parallel_config_lowers_scan_aggregate_to_morsel_pipeline() {
        let db = tiny_db();
        let serial = plan_text(&db, ScanConfig::default(), COUNT_WHERE);
        let parallel = plan_text(&db, ScanConfig::default().with_threads(4), COUNT_WHERE);
        assert!(serial.to_string().contains("hash-aggregate"), "{serial}");
        assert!(
            parallel.to_string().contains("morsel-aggregate workers=4"),
            "{parallel}"
        );
        assert_eq!(
            serial.execute(&db).value(0, 0),
            parallel.execute(&db).value(0, 0)
        );
    }

    #[test]
    fn unknown_relation_and_column_are_semantic_errors() {
        let db = tiny_db();
        let planner = Planner::new(&db, ScanConfig::default());
        let ir = parse_ir(
            r#"{"version": 1, "plan": {"op": "scan", "relation": "nope", "columns": ["x"]}}"#,
        )
        .unwrap();
        let err = planner.plan(&ir).unwrap_err();
        assert_eq!(err.kind, IrErrorKind::Semantic);
        assert!(err.message.contains("unknown relation \"nope\""), "{err}");

        let ir = parse_ir(
            r#"{"version": 1, "plan": {"op": "scan", "relation": "t", "columns": ["zz"]}}"#,
        )
        .unwrap();
        let err = planner.plan(&ir).unwrap_err();
        assert!(err.message.contains("has no column \"zz\""), "{err}");
    }

    #[test]
    fn declared_type_mismatch_is_a_semantic_error() {
        let db = tiny_db();
        let ir = parse_ir(
            r#"{"version": 1, "plan": {
                "op": "project",
                "input": {"op": "scan", "relation": "t", "columns": ["qty"]},
                "exprs": [{"expr": {"add": [{"col": 0}, {"int": 1}]}, "type": "double"}]
            }}"#,
        )
        .unwrap();
        let err = Planner::new(&db, ScanConfig::default())
            .plan(&ir)
            .unwrap_err();
        assert_eq!(err.kind, IrErrorKind::Semantic);
        assert!(
            err.message.contains("declares type double") && err.message.contains("type int"),
            "{err}"
        );
    }

    #[test]
    fn string_int_comparison_is_rejected() {
        let db = tiny_db();
        let ir = parse_ir(
            r#"{"version": 1, "plan": {
                "op": "filter",
                "input": {"op": "scan", "relation": "t", "columns": ["tag"]},
                "predicate": {"eq": [{"col": 0}, {"int": 3}]}
            }}"#,
        )
        .unwrap();
        let err = Planner::new(&db, ScanConfig::default())
            .plan(&ir)
            .unwrap_err();
        assert!(err.message.contains("cannot compare str with int"), "{err}");
    }

    #[test]
    fn mistyped_scan_predicate_literal_is_rejected() {
        let db = tiny_db();
        let ir = parse_ir(
            r#"{"version": 1, "plan": {"op": "scan", "relation": "t", "columns": ["qty"],
                "predicates": [{"column": "qty", "cmp": "le", "value": {"str": "9"}}]}}"#,
        )
        .unwrap();
        let err = Planner::new(&db, ScanConfig::default())
            .plan(&ir)
            .unwrap_err();
        assert!(
            err.message
                .contains("compares a int column with a str literal"),
            "{err}"
        );
    }

    #[test]
    fn typed_string_predicates_stay_sargable() {
        let db = tiny_db();
        let plan = plan_text(
            &db,
            ScanConfig::default(),
            r#"{"version": 1, "plan": {
                "op": "aggregate",
                "input": {
                  "op": "filter",
                  "input": {"op": "scan", "relation": "t", "columns": ["tag", "qty"]},
                  "predicate": {"eq": [{"col": 0}, {"str": "A"}]}
                },
                "groups": [],
                "aggregates": [{"func": "count_star", "type": "int"}]
            }}"#,
        );
        let rendered = plan.to_string();
        assert!(rendered.contains("tag = \"A\" (pushed)"), "{rendered}");
        assert!(!rendered.contains("filter"), "{rendered}");
        let batch = plan.execute(&db);
        // i % 3 == 0 for 667 of 0..2000
        assert_eq!(batch.value(0, 0), Value::Int(667));
    }

    #[test]
    fn join_key_type_mismatch_is_rejected() {
        let db = tiny_db();
        let ir = parse_ir(
            r#"{"version": 1, "plan": {
                "op": "join", "type": "inner",
                "build": {"op": "scan", "relation": "t", "columns": ["id"]},
                "probe": {"op": "scan", "relation": "t", "columns": ["tag"]},
                "build_keys": [0], "probe_keys": [0]
            }}"#,
        )
        .unwrap();
        let err = Planner::new(&db, ScanConfig::default())
            .plan(&ir)
            .unwrap_err();
        assert!(err.message.contains("join key type mismatch"), "{err}");
    }

    #[test]
    fn display_is_stable_and_tree_shaped() {
        let db = tiny_db();
        let plan = plan_text(&db, ScanConfig::default().with_threads(2), COUNT_WHERE);
        let expected = "\
physical plan (threads=2, mode=vectorized+sarg, psma=true)
morsel-aggregate workers=2 groups=[] aggs=[count(*):int]
└─ filter #1 != #0
   └─ scan t cols=[qty, price] preds=[qty between 10 and 19 (pushed)]
";
        assert_eq!(plan.to_string(), expected);
    }
}
