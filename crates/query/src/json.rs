//! A dependency-free JSON parser and serializer with **source positions**.
//!
//! The IR layer ([`crate::ir`]) needs every parse and validation error to point at
//! a line/column of the query text, so this parser attaches a [`Pos`] to every
//! value it produces. It accepts exactly the JSON grammar of RFC 8259 with two
//! deliberate restrictions that make IR files easier to review and diff:
//!
//! * **Duplicate object keys are an error** (RFC 8259 leaves them undefined;
//!   silently keeping one of the two would hide typos in query files).
//! * **Numbers are split into integers and doubles at the lexical level**: a
//!   number without `.`/`e`/`E` must fit an `i64` and becomes [`JsonValue::Int`];
//!   anything else becomes [`JsonValue::Double`]. The IR's typed literals rely on
//!   this distinction.
//!
//! The serializer ([`to_pretty`]) emits the canonical formatting used for
//! round-tripping IR and for the golden plan files: two-space indentation, keys
//! in insertion order.

use std::fmt;

/// A position in the parsed text (1-based line and column, counted in bytes —
/// the IR files are ASCII in practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// A JSON value with the position where it started in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Json {
    /// Where the value started (points at its first character).
    pub pos: Pos,
    /// The value itself.
    pub value: JsonValue,
}

/// The value alternatives of JSON, with numbers split into ints and doubles.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent, fitting an `i64`.
    Int(i64),
    /// Any other number.
    Double(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is preserved and keys are unique.
    Object(Vec<(String, Json)>),
}

impl JsonValue {
    /// A short noun for error messages ("expected an object, found a string").
    pub fn kind_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "a boolean",
            JsonValue::Int(_) => "an integer",
            JsonValue::Double(_) => "a number",
            JsonValue::Str(_) => "a string",
            JsonValue::Array(_) => "an array",
            JsonValue::Object(_) => "an object",
        }
    }
}

/// A syntax error with the position where it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Where the error was detected.
    pub pos: Pos,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document. Trailing non-whitespace after the root value
/// is an error (a truncated or concatenated file must not parse silently).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser::new(text);
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(parser.error("unexpected trailing characters after the JSON document"));
    }
    Ok(value)
}

/// Maximum nesting depth of arrays/objects. The parser recurses once per
/// nesting level, so without a cap an adversarial document (`[[[[…`) overflows
/// the stack instead of returning a positioned error. 512 levels is far beyond
/// any legitimate IR document (plan depth tops out in the dozens) while staying
/// well inside the default stack even in debug builds.
const MAX_DEPTH: u32 = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    line: u32,
    col: u32,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            at: 0,
            line: 1,
            col: 1,
            depth: 0,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            pos: self.pos(),
        }
    }

    fn at_end(&self) -> bool {
        self.at >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn advance(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.at += 1;
        if byte == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(byte)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.advance();
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(b) if b == byte => {
                self.advance();
                Ok(())
            }
            Some(b) => Err(self.error(format!(
                "expected '{}', found '{}'",
                byte as char, b as char
            ))),
            None => Err(self.error(format!(
                "expected '{}', found end of input (truncated JSON?)",
                byte as char
            ))),
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        let pos = self.pos();
        match self.peek() {
            None => Err(self.error("expected a value, found end of input (truncated JSON?)")),
            Some(b'{') => self.parse_nested(pos, Parser::parse_object),
            Some(b'[') => self.parse_nested(pos, Parser::parse_array),
            Some(b'"') => {
                let s = self.parse_string()?;
                Ok(Json {
                    pos,
                    value: JsonValue::Str(s),
                })
            }
            Some(b't') => self.parse_keyword(pos, "true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword(pos, "false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword(pos, "null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(pos),
            Some(b) => Err(self.error(format!("unexpected character '{}'", b as char))),
        }
    }

    /// Enter one nesting level (array or object), enforcing [`MAX_DEPTH`]. The
    /// error is positioned at the opening bracket of the value that crossed the
    /// limit, so tooling can point straight at the offending nesting.
    fn parse_nested(
        &mut self,
        pos: Pos,
        inner: fn(&mut Parser<'a>, Pos) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(JsonError {
                message: format!("document nesting exceeds the maximum depth of {MAX_DEPTH}"),
                pos,
            });
        }
        self.depth += 1;
        let result = inner(self, pos);
        self.depth -= 1;
        result
    }

    fn parse_keyword(
        &mut self,
        pos: Pos,
        keyword: &str,
        value: JsonValue,
    ) -> Result<Json, JsonError> {
        for expected in keyword.bytes() {
            match self.advance() {
                Some(b) if b == expected => {}
                _ => return Err(self.error(format!("invalid literal (expected `{keyword}`)"))),
            }
        }
        Ok(Json { pos, value })
    }

    fn parse_number(&mut self, pos: Pos) -> Result<Json, JsonError> {
        let start = self.at;
        let mut is_double = false;
        if self.peek() == Some(b'-') {
            self.advance();
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("expected a digit after '-'"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.advance();
        }
        if self.peek() == Some(b'.') {
            is_double = true;
            self.advance();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.advance();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_double = true;
            self.advance();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.advance();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.advance();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("scanned ASCII");
        let value = if is_double {
            JsonValue::Double(
                text.parse::<f64>()
                    .map_err(|e| self.error(format!("invalid number `{text}`: {e}")))?,
            )
        } else {
            JsonValue::Int(
                text.parse::<i64>()
                    .map_err(|_| self.error(format!("integer `{text}` does not fit 64 bits")))?,
            )
        };
        Ok(Json { pos, value })
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.advance() {
                None => return Err(self.error("unterminated string (truncated JSON?)")),
                Some(b'"') => break,
                Some(b'\\') => match self.advance() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = match self.advance() {
                                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                                _ => return Err(self.error("expected four hex digits after \\u")),
                            };
                            code = code * 16 + digit;
                        }
                        // Surrogate pairs are rejected rather than decoded: IR
                        // files have no business containing astral-plane escapes,
                        // and a loud error beats silent mojibake.
                        let ch = char::from_u32(code).ok_or_else(|| {
                            self.error(format!("\\u{code:04x} is not a valid scalar value"))
                        })?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(b) => out.push(b),
            }
        }
        String::from_utf8(out).map_err(|_| self.error("string is not valid UTF-8"))
    }

    fn parse_array(&mut self, pos: Pos) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.advance();
            return Ok(Json {
                pos,
                value: JsonValue::Array(items),
            });
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.advance();
                }
                Some(b']') => {
                    self.advance();
                    break;
                }
                Some(b) => {
                    return Err(self.error(format!(
                        "expected ',' or ']' in array, found '{}'",
                        b as char
                    )))
                }
                None => return Err(self.error("unterminated array (truncated JSON?)")),
            }
        }
        Ok(Json {
            pos,
            value: JsonValue::Array(items),
        })
    }

    fn parse_object(&mut self, pos: Pos) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.advance();
            return Ok(Json {
                pos,
                value: JsonValue::Object(fields),
            });
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos();
            match self.peek() {
                Some(b'"') => {}
                Some(_) => {
                    return Err(JsonError {
                        message: "expected a string object key".into(),
                        pos: key_pos,
                    })
                }
                None => {
                    return Err(JsonError {
                        message: "truncated document: expected an object key".into(),
                        pos: key_pos,
                    })
                }
            }
            let key = self.parse_string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    message: format!("duplicate object key {key:?}"),
                    pos: key_pos,
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.advance();
                }
                Some(b'}') => {
                    self.advance();
                    break;
                }
                Some(b) => {
                    return Err(self.error(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        b as char
                    )))
                }
                None => return Err(self.error("unterminated object (truncated JSON?)")),
            }
        }
        Ok(Json {
            pos,
            value: JsonValue::Object(fields),
        })
    }
}

// ------------------------------------------------------------------- serializer

/// Serialize a value with two-space indentation (the canonical formatting of the
/// checked-in IR files).
pub fn to_pretty(value: &JsonValue) -> String {
    let mut out = String::new();
    write_value(value, 0, &mut out);
    out.push('\n');
    out
}

fn write_value(value: &JsonValue, indent: usize, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(v) => out.push_str(&v.to_string()),
        JsonValue::Double(v) => {
            // `{:?}` keeps a trailing `.0` on integral doubles, so the value
            // re-parses as a double (round-trip stability).
            out.push_str(&format!("{v:?}"));
        }
        JsonValue::Str(s) => write_string(s, out),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_value(&item.value, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        JsonValue::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_value(&value.value, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(text: &str) -> Json {
        parse(text).expect("should parse")
    }

    #[test]
    fn scalars_parse_with_positions() {
        assert_eq!(parse_ok("42").value, JsonValue::Int(42));
        assert_eq!(parse_ok("-7").value, JsonValue::Int(-7));
        assert_eq!(parse_ok("1.5").value, JsonValue::Double(1.5));
        assert_eq!(parse_ok("1e3").value, JsonValue::Double(1000.0));
        assert_eq!(parse_ok("\"hi\\n\"").value, JsonValue::Str("hi\n".into()));
        assert_eq!(parse_ok("true").value, JsonValue::Bool(true));
        assert_eq!(parse_ok("null").value, JsonValue::Null);
        let v = parse_ok("\n  12");
        assert_eq!(v.pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn nested_structure_positions_point_at_values() {
        let doc = parse_ok("{\n  \"a\": [1, {\"b\": 2}]\n}");
        let JsonValue::Object(fields) = &doc.value else {
            panic!("expected object");
        };
        let (key, array) = &fields[0];
        assert_eq!(key, "a");
        assert_eq!(array.pos, Pos { line: 2, col: 8 });
        let JsonValue::Array(items) = &array.value else {
            panic!("expected array");
        };
        assert_eq!(items[1].pos, Pos { line: 2, col: 12 });
    }

    #[test]
    fn truncated_documents_error_with_position() {
        for text in ["{\"a\": ", "[1, 2", "\"abc", "{\"a\": 1,"] {
            let err = parse(text).unwrap_err();
            assert!(
                err.message.contains("truncated") || err.message.contains("end of input"),
                "{text:?} -> {err}"
            );
        }
        let err = parse("{\n  \"a\": [1,\n").unwrap_err();
        assert_eq!(err.pos.line, 3, "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse("{} x").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
        assert_eq!(err.pos, Pos { line: 1, col: 4 });
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = parse("{\"a\": 1, \"a\": 2}").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        assert_eq!(err.pos.col, 10);
    }

    #[test]
    fn numbers_split_into_int_and_double() {
        assert_eq!(parse_ok("5").value, JsonValue::Int(5));
        assert_eq!(parse_ok("5.0").value, JsonValue::Double(5.0));
        // i64 overflow is loud, not lossy
        assert!(parse("99999999999999999999").is_err());
    }

    #[test]
    fn round_trip_is_stable() {
        let text = "{\n  \"version\": 1,\n  \"xs\": [\n    1,\n    2.5,\n    \"s\",\n    null\n  ],\n  \"empty\": {}\n}\n";
        let parsed = parse(text).unwrap();
        assert_eq!(to_pretty(&parsed.value), text);
        let reparsed = parse(&to_pretty(&parsed.value)).unwrap();
        assert_eq!(reparsed, parsed);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // 10k-deep documents must produce a positioned error, not a stack
        // overflow. Exercise both the array and the object recursion paths.
        let deep_array = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = parse(&deep_array).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        assert_eq!(err.pos.line, 1);
        assert_eq!(
            err.pos.col,
            MAX_DEPTH + 1,
            "points at the bracket past the limit"
        );

        let deep_object = "{\"k\":".repeat(10_000) + "1" + &"}".repeat(10_000);
        let err = parse(&deep_object).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");

        // Mixed nesting also trips the guard.
        let mixed = "[{\"k\":".repeat(5_000) + "1" + &"}]".repeat(5_000);
        assert!(parse(&mixed).unwrap_err().message.contains("nesting"));
    }

    #[test]
    fn nesting_below_the_limit_parses() {
        let depth = (MAX_DEPTH - 2) as usize;
        let doc = "[".repeat(depth) + "0" + &"]".repeat(depth);
        let mut value = &parse_ok(&doc).value;
        for _ in 0..depth {
            let JsonValue::Array(items) = value else {
                panic!("expected array");
            };
            value = &items[0].value;
        }
        assert_eq!(*value, JsonValue::Int(0));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse_ok("\"\\u00e9\"").value,
            JsonValue::Str("\u{e9}".into())
        );
        assert!(parse("\"\\ud800\"").is_err(), "lone surrogate rejected");
    }
}
