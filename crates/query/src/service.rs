//! The query service: one entry point for every query surface, plus
//! multi-tenant admission control.
//!
//! [`Session`] is the single documented way to run a query — SQL text
//! ([`Session::sql`]), a JSON-IR document ([`Session::query_ir`]), or a
//! pre-built [`PhysicalPlan`] ([`Session::execute_plan`]) all go through it.
//! A stand-alone session borrows a database via [`Connect::connect`]
//! (`db.connect()`); a multi-tenant session comes from
//! [`QueryService::session`] and additionally participates in admission
//! control:
//!
//! * at most [`ServiceConfig::max_concurrent`] queries run at once;
//! * each query runs under the session's declared memory budget, granted from
//!   the shared [`ServiceConfig::total_budget_bytes`] pool **before** the
//!   query starts and returned when it finishes. Admission is FIFO: a query
//!   whose budget does not currently fit waits at the head of the queue (no
//!   overtaking, so no starvation), and a budget larger than the whole pool is
//!   rejected immediately with [`Error::OverBudget`] — it can never be
//!   admitted, so queueing it would deadlock the queue head.
//! * the granted budget derives the query's back-pressure: the scan's
//!   reorder-channel capacity is `clamp(budget / 1 MiB, 1, 2 × workers + 2)`
//!   batches (and cold-scan read-ahead is capped to it), so a small budget
//!   bounds how much decompressed data a parallel scan keeps in flight. The
//!   block-cache half of the budget is derived once per database with
//!   [`derive_spill_policy`].
//!
//! Every failure surfaces as the unified [`Error`] with a stable `Display`
//! rendering — parse/plan errors keep their 1-based line/column positions,
//! cold-read failures inside operators are caught at the session boundary
//! (the operator tree itself has no error channel and panics), and admission
//! rejections name both the requested and the available budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};

use exec::{morsel, CancelToken, ScanConfig};
use storage::{blockstore::SpillPolicy, Database};

use crate::error::IrError;
use crate::planner::{PhysicalPlan, Planner};
use crate::sql::parse_sql;
use crate::stream::QueryStream;
use crate::{parse_ir, QueryIr};

/// Bytes of budget that buy one in-flight batch slot in the scan's reorder
/// channel (a decompressed Data Block batch is on this order of magnitude).
const CHANNEL_SLOT_BYTES: usize = 1 << 20;

// ------------------------------------------------------------------ error type

/// The unified error of the query service: everything that can go wrong
/// between query text and result batch, with a stable `Display` rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Parse / schema / planning failure (positioned; renders as the
    /// underlying [`IrError`], e.g. `syntax error at line 1, column 8: ...`).
    Query(IrError),
    /// A cold block could not be read back from the spill store during
    /// execution. Renders as `cold read error: <store detail>`.
    ColdRead(String),
    /// Admission rejected the query because its budget can never be granted.
    /// Renders as `admission error: query budget N bytes exceeds the service
    /// budget M bytes`.
    OverBudget {
        /// The budget the session asked for.
        requested_bytes: usize,
        /// The service's whole budget pool.
        total_bytes: usize,
    },
    /// The query was cancelled cooperatively — the session's
    /// [`CancelToken`] was raised (or the session was
    /// [closed](Session::close)) and the morsel workers stopped at their next
    /// boundary. Renders as `query cancelled`.
    Cancelled,
    /// Any other I/O-flavoured failure. Renders as `i/o error: <detail>`.
    Io(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Query(err) => err.fmt(f),
            Error::ColdRead(detail) => write!(f, "cold read error: {detail}"),
            Error::OverBudget {
                requested_bytes,
                total_bytes,
            } => write!(
                f,
                "admission error: query budget {requested_bytes} bytes exceeds the service budget {total_bytes} bytes"
            ),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Io(detail) => write!(f, "i/o error: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Query(err) => Some(err),
            _ => None,
        }
    }
}

impl From<IrError> for Error {
    fn from(err: IrError) -> Error {
        Error::Query(err)
    }
}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Error {
        Error::Io(err.to_string())
    }
}

// ------------------------------------------------------------------- sessions

/// The single entry point for running queries against a [`Database`].
///
/// Obtained from [`Connect::connect`] (stand-alone, borrowing the database) or
/// [`QueryService::session`] (shared database + admission control). All three
/// query surfaces go through it; results are identical across them because SQL
/// and JSON both lower to the same IR before planning.
pub struct Session<'db> {
    db: DbRef<'db>,
    config: ScanConfig,
    service: Option<ServiceHandle>,
    shared: Arc<SessionShared>,
}

/// State shared between a session, its in-flight [`QueryStream`]s, and any
/// thread holding the session's [`CancelToken`] — the pieces a network server
/// must reach from its reader thread while the executor is mid-query.
struct SessionShared {
    /// The session's cooperative cancel flag (see [`Session::cancel_token`]).
    cancel: CancelToken,
    /// Set by [`Session::close`]: the session admits no further queries.
    closed: AtomicBool,
    /// Admission grants of the session's in-flight queries. [`Session::close`]
    /// force-releases them so the service's budget pool recovers immediately
    /// on client disconnect, instead of waiting for stream drop order.
    grants: Mutex<Vec<Weak<Grant>>>,
}

impl SessionShared {
    fn new() -> Arc<SessionShared> {
        Arc::new(SessionShared {
            cancel: CancelToken::new(),
            closed: AtomicBool::new(false),
            grants: Mutex::new(Vec::new()),
        })
    }
}

enum DbRef<'db> {
    Borrowed(&'db Database),
    Shared(Arc<Database>),
}

impl DbRef<'_> {
    fn get(&self) -> &Database {
        match self {
            DbRef::Borrowed(db) => db,
            DbRef::Shared(db) => db,
        }
    }
}

struct ServiceHandle {
    admission: Arc<Admission>,
    budget_bytes: usize,
}

/// `Database::connect()` — the ergonomic way to a [`Session`].
pub trait Connect {
    /// Open a stand-alone session on this database (default [`ScanConfig`],
    /// no admission control; configure with [`Session::with_config`]).
    fn connect(&self) -> Session<'_>;
}

impl Connect for Database {
    fn connect(&self) -> Session<'_> {
        Session {
            db: DbRef::Borrowed(self),
            config: ScanConfig::default(),
            service: None,
            shared: SessionShared::new(),
        }
    }
}

impl<'db> Session<'db> {
    /// The same session with a different scan configuration (threads, scan
    /// mode, morsel size, ...).
    pub fn with_config(mut self, config: ScanConfig) -> Session<'db> {
        self.config = config;
        self
    }

    /// The scan configuration queries on this session plan against, after
    /// applying the session's budget derivation (if any).
    pub fn effective_config(&self) -> ScanConfig {
        let mut config = self.config;
        if let Some(service) = &self.service {
            let workers = morsel::effective_threads(config.threads);
            let default_cap = 2 * workers + 2;
            let slots = (service.budget_bytes / CHANNEL_SLOT_BYTES).max(1);
            config.channel_cap = slots.min(default_cap);
            if config.readahead > 0 {
                config.readahead = config.readahead.min(config.channel_cap);
            }
        }
        config
    }

    /// The database this session runs against.
    pub fn database(&self) -> &Database {
        self.db.get()
    }

    /// Parse SQL, plan it, and start executing it as a pull-based
    /// [`QueryStream`] (call [`QueryStream::collect`] for the materialised
    /// result). Admission (for service sessions) happens here, before the
    /// stream is returned.
    pub fn sql(&self, text: &str) -> Result<QueryStream<'_>, Error> {
        let ir = parse_sql(self.db.get(), text)?;
        self.run_ir(&ir)
    }

    /// Parse a JSON-IR document, plan it, and start executing it.
    pub fn query_ir(&self, text: &str) -> Result<QueryStream<'_>, Error> {
        let ir = parse_ir(text)?;
        self.run_ir(&ir)
    }

    /// Plan an already-parsed IR document and start executing it.
    pub fn run_ir(&self, ir: &QueryIr) -> Result<QueryStream<'_>, Error> {
        let plan = Planner::new(self.db.get(), self.effective_config()).plan(ir)?;
        self.start(&plan)
    }

    /// Lower SQL to a reusable [`PhysicalPlan`] (plan once, execute many).
    pub fn compile_sql(&self, text: &str) -> Result<PhysicalPlan, Error> {
        let ir = parse_sql(self.db.get(), text)?;
        Ok(Planner::new(self.db.get(), self.effective_config()).plan(&ir)?)
    }

    /// Lower a JSON-IR document to a reusable [`PhysicalPlan`].
    pub fn compile_ir(&self, text: &str) -> Result<PhysicalPlan, Error> {
        let ir = parse_ir(text)?;
        Ok(Planner::new(self.db.get(), self.effective_config()).plan(&ir)?)
    }

    /// Execute a pre-built plan as a [`QueryStream`]. The plan's
    /// reorder-channel capacity is overridden by the session's budget
    /// derivation; every other planning decision (thread count, operator
    /// choice) is the plan's own.
    pub fn execute_plan(&self, plan: &PhysicalPlan) -> Result<QueryStream<'_>, Error> {
        let cap = self.effective_config().channel_cap;
        if plan.config().channel_cap != cap {
            let adjusted = plan.clone().with_channel_cap(cap);
            self.start(&adjusted)
        } else {
            self.start(plan)
        }
    }

    /// The session's cooperative cancel token. Raising it (from any thread —
    /// a network server's reader thread, a timeout watchdog, ...) stops the
    /// in-flight query at its next morsel boundary: the workers cancel and
    /// join, and the query's [`QueryStream`] reports [`Error::Cancelled`].
    /// Starting a new query re-arms the token, so a cancel aimed at a
    /// finished query does not poison the next one.
    pub fn cancel_token(&self) -> CancelToken {
        self.shared.cancel.clone()
    }

    /// Close the session: cancel the in-flight query (if any), release its
    /// admission grant back to the service pool **immediately** — without
    /// waiting for the [`QueryStream`] to be dropped — and refuse further
    /// queries (they return [`Error::Cancelled`]). Idempotent. This is how a
    /// network server returns a disconnected client's budget deterministically
    /// rather than depending on drop order.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.cancel.cancel();
        let mut grants = self.shared.grants.lock().expect("session grants");
        for grant in grants.drain(..) {
            if let Some(grant) = grant.upgrade() {
                grant.release();
            }
        }
    }

    /// Has [`Session::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Start a plan under admission control (waits for a grant when the
    /// session belongs to a service) and hand it to a pull-based
    /// [`QueryStream`]. Execution panics surface from the stream's pulls, not
    /// from here.
    fn start(&self, plan: &PhysicalPlan) -> Result<QueryStream<'_>, Error> {
        if self.is_closed() {
            return Err(Error::Cancelled);
        }
        // Re-arm the token: a cancel aimed at the previous query must not
        // poison this one. (A cancel that races the new query start simply
        // cancels the new query — the same semantics as a wire cancel frame
        // arriving just after a query began.)
        self.shared.cancel.reset();
        let grant = match &self.service {
            Some(service) => {
                let grant = service.admission.acquire(service.budget_bytes)?;
                let mut grants = self.shared.grants.lock().expect("session grants");
                grants.retain(|g| g.strong_count() > 0);
                grants.push(Arc::downgrade(&grant));
                Some(grant)
            }
            None => None,
        };
        if self.is_closed() {
            // close() raced admission: hand the budget straight back.
            if let Some(grant) = &grant {
                grant.release();
            }
            return Err(Error::Cancelled);
        }
        let db = self.db.get();
        Ok(QueryStream::new(
            plan.build_tree(db),
            plan.output_types().to_vec(),
            grant,
            self.shared.cancel.clone(),
        ))
    }
}

// -------------------------------------------------------------- query service

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum number of queries executing at once (further queries wait).
    pub max_concurrent: usize,
    /// Shared memory-budget pool, in bytes, that running queries' budgets are
    /// granted from.
    pub total_budget_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_concurrent: 8,
            total_budget_bytes: 256 << 20,
        }
    }
}

/// A multi-tenant query service over one shared database: hands out
/// [`Session`]s whose queries are admitted under a shared concurrency limit
/// and memory-budget pool.
pub struct QueryService {
    db: Arc<Database>,
    base_config: ScanConfig,
    admission: Arc<Admission>,
    config: ServiceConfig,
}

impl QueryService {
    /// A service over `db` planning with `base_config` (per-session overrides
    /// via [`Session::with_config`]).
    pub fn new(db: Arc<Database>, base_config: ScanConfig, config: ServiceConfig) -> QueryService {
        QueryService {
            db,
            base_config,
            admission: Arc::new(Admission::new(
                config.max_concurrent.max(1),
                config.total_budget_bytes,
            )),
            config,
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The shared database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Open a session whose queries each run under `budget_bytes` of the
    /// shared pool. The session is `'static` (it shares ownership of the
    /// database), so it can move to another thread.
    pub fn session(&self, budget_bytes: usize) -> Session<'static> {
        Session {
            db: DbRef::Shared(Arc::clone(&self.db)),
            config: self.base_config,
            service: Some(ServiceHandle {
                admission: Arc::clone(&self.admission),
                budget_bytes,
            }),
            shared: SessionShared::new(),
        }
    }

    /// A snapshot of the admission state — what is running and how much of
    /// the budget pool is granted right now. Deterministically reflects every
    /// release that happened-before the call (a disconnect test polls this to
    /// pin that a dead client's budget actually came back).
    pub fn stats(&self) -> ServiceStats {
        let state = self.admission.state.lock().expect("admission lock");
        ServiceStats {
            running: state.running,
            granted_bytes: state.granted_bytes,
        }
    }
}

/// A point-in-time snapshot of a [`QueryService`]'s admission state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries currently holding a run slot.
    pub running: usize,
    /// Bytes of the shared pool currently granted out.
    pub granted_bytes: usize,
}

/// Derive the database's per-relation block-cache capacity from a service
/// budget: half the budget is reserved for block caches (the other half covers
/// in-flight batches and operator state), split evenly across relations
/// because [`Database::enable_spill`] gives every relation's store the policy's
/// full `cache_capacity_bytes`. Pins can overshoot a store's capacity
/// transiently, which is why the cache half is not the whole budget.
pub fn derive_spill_policy(
    base: SpillPolicy,
    total_budget_bytes: usize,
    relation_count: usize,
) -> SpillPolicy {
    let per_store = (total_budget_bytes / 2) / relation_count.max(1);
    SpillPolicy {
        cache_capacity_bytes: per_store.max(1),
        ..base
    }
}

// ------------------------------------------------------------------ admission

/// FIFO admission: a ticket queue over (running queries, granted bytes).
struct Admission {
    max_concurrent: usize,
    total_budget: usize,
    state: Mutex<AdmissionState>,
    cond: Condvar,
}

#[derive(Default)]
struct AdmissionState {
    running: usize,
    granted_bytes: usize,
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Ticket currently at the head of the queue.
    serving: u64,
}

impl Admission {
    fn new(max_concurrent: usize, total_budget: usize) -> Admission {
        Admission {
            max_concurrent,
            total_budget,
            state: Mutex::new(AdmissionState::default()),
            cond: Condvar::new(),
        }
    }

    /// Block until `budget_bytes` and a run slot are granted (FIFO). Requests
    /// larger than the whole pool fail fast — they could never be granted.
    fn acquire(self: &Arc<Admission>, budget_bytes: usize) -> Result<Arc<Grant>, Error> {
        if budget_bytes > self.total_budget {
            return Err(Error::OverBudget {
                requested_bytes: budget_bytes,
                total_bytes: self.total_budget,
            });
        }
        let mut state = self.state.lock().expect("admission lock");
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        while !(state.serving == ticket
            && state.running < self.max_concurrent
            && state.granted_bytes + budget_bytes <= self.total_budget)
        {
            state = self.cond.wait(state).expect("admission lock");
        }
        state.serving += 1;
        state.running += 1;
        state.granted_bytes += budget_bytes;
        // Wake the next ticket: it may be admittable immediately.
        self.cond.notify_all();
        Ok(Arc::new(Grant {
            admission: Arc::clone(self),
            budget_bytes,
            released: AtomicBool::new(false),
        }))
    }

    fn release(&self, budget_bytes: usize) {
        let mut state = self.state.lock().expect("admission lock");
        state.running -= 1;
        state.granted_bytes -= budget_bytes;
        drop(state);
        self.cond.notify_all();
    }
}

/// A granted admission; returns its budget and run slot when released —
/// explicitly (a [`Session::close`] force-release) or on drop, whichever
/// comes first. Release is idempotent, so both may happen.
pub(crate) struct Grant {
    admission: Arc<Admission>,
    budget_bytes: usize,
    released: AtomicBool,
}

impl Grant {
    /// Return the budget and run slot to the pool (idempotent).
    pub(crate) fn release(&self) {
        if !self.released.swap(true, Ordering::AcqRel) {
            self.admission.release(self.budget_bytes);
        }
    }
}

impl Drop for Grant {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::{DataType, Value};
    use storage::{ColumnDef, Schema};

    fn small_db() -> Database {
        let mut db = Database::new();
        let rel = db.create_relation("t", Schema::new(vec![ColumnDef::new("a", DataType::Int)]));
        for i in 0..100i64 {
            rel.insert(vec![Value::Int(i)]);
        }
        db.freeze_all();
        db
    }

    #[test]
    fn sql_json_and_plan_paths_agree() {
        let db = small_db();
        let session = db.connect();
        let from_sql = session
            .sql("SELECT count(*) FROM t PREWHERE a < 50")
            .unwrap()
            .collect()
            .unwrap();
        let from_ir = session
            .query_ir(
                r#"{"version": 1, "plan": {
                    "op": "aggregate",
                    "input": {"op": "scan", "relation": "t", "columns": ["a"],
                              "predicates": [{"column": "a", "cmp": "lt", "value": {"int": 50}}]},
                    "groups": [],
                    "aggregates": [{"func": "count_star", "type": "int"}]}}"#,
            )
            .unwrap()
            .collect()
            .unwrap();
        let plan = session
            .compile_sql("SELECT count(*) FROM t PREWHERE a < 50")
            .unwrap();
        let from_plan = session.execute_plan(&plan).unwrap().collect().unwrap();
        assert_eq!(from_sql.value(0, 0), Value::Int(50));
        assert_eq!(from_ir.value(0, 0), Value::Int(50));
        assert_eq!(from_plan.value(0, 0), Value::Int(50));
    }

    #[test]
    fn error_display_is_stable() {
        let db = small_db();
        let session = db.connect();
        let err = session.sql("SELECT nope FROM t").unwrap_err();
        assert_eq!(
            err.to_string(),
            "semantic error at line 1, column 8: unknown column `nope` in relation `t`"
        );
        let err = Error::OverBudget {
            requested_bytes: 10,
            total_bytes: 5,
        };
        assert_eq!(
            err.to_string(),
            "admission error: query budget 10 bytes exceeds the service budget 5 bytes"
        );
        assert_eq!(Error::Cancelled.to_string(), "query cancelled");
        assert_eq!(
            Error::ColdRead("boom".into()).to_string(),
            "cold read error: boom"
        );
        assert_eq!(Error::Io("boom".into()).to_string(), "i/o error: boom");
    }

    #[test]
    fn close_releases_budget_before_stream_drop() {
        let service = QueryService::new(
            Arc::new(small_db()),
            ScanConfig::default(),
            ServiceConfig {
                max_concurrent: 2,
                total_budget_bytes: 8 << 20,
            },
        );
        let session = service.session(4 << 20);
        let mut stream = session.sql("SELECT a FROM t").unwrap();
        assert_eq!(service.stats().granted_bytes, 4 << 20);
        assert_eq!(service.stats().running, 1);

        // close() must return the budget immediately — the pinned release
        // ordering is "close() happens-before the pool recovers", NOT "the
        // stream drop does". The stream is still alive here.
        session.close();
        assert_eq!(service.stats().granted_bytes, 0);
        assert_eq!(service.stats().running, 0);

        // The closed session's in-flight stream reports Cancelled, new
        // queries are refused, and dropping the stream later must not
        // double-release (release is idempotent).
        assert!(matches!(stream.next_batch(), Err(Error::Cancelled)));
        assert!(matches!(
            session.sql("SELECT a FROM t"),
            Err(Error::Cancelled)
        ));
        drop(stream);
        assert_eq!(service.stats().granted_bytes, 0);
        assert_eq!(service.stats().running, 0);
    }

    #[test]
    fn over_budget_is_rejected_immediately() {
        let service = QueryService::new(
            Arc::new(small_db()),
            ScanConfig::default(),
            ServiceConfig {
                max_concurrent: 2,
                total_budget_bytes: 1 << 20,
            },
        );
        let session = service.session(2 << 20);
        let err = session.sql("SELECT count(*) FROM t").unwrap_err();
        assert!(matches!(err, Error::OverBudget { .. }), "{err}");
    }

    #[test]
    fn budget_derives_channel_cap() {
        let service = QueryService::new(
            Arc::new(small_db()),
            ScanConfig::default().with_threads(4),
            ServiceConfig::default(),
        );
        // Tiny budget: one slot. Large budget: the config default (2w + 2).
        assert_eq!(service.session(1).effective_config().channel_cap, 1);
        assert_eq!(
            service.session(1 << 30).effective_config().channel_cap,
            2 * 4 + 2
        );
    }

    #[test]
    fn admission_serializes_when_pool_is_tight() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let service = Arc::new(QueryService::new(
            Arc::new(small_db()),
            ScanConfig::default(),
            ServiceConfig {
                max_concurrent: 8,
                total_budget_bytes: 8 << 20,
            },
        ));
        let peak = Arc::new(AtomicUsize::new(0));
        let running = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let service = Arc::clone(&service);
            let peak = Arc::clone(&peak);
            let running = Arc::clone(&running);
            handles.push(std::thread::spawn(move || {
                // 5 MiB each against an 8 MiB pool: at most one runs at a time.
                let session = service.session(5 << 20);
                for _ in 0..3 {
                    let grant = session
                        .service
                        .as_ref()
                        .unwrap()
                        .admission
                        .acquire(5 << 20)
                        .unwrap();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    running.fetch_sub(1, Ordering::SeqCst);
                    drop(grant);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1);
    }
}
