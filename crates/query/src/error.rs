//! The error taxonomy of the query surface.
//!
//! Every failure on the way from JSON text to a physical plan is an [`IrError`]
//! carrying a position in the source text and one of three kinds:
//!
//! | kind | stage | examples |
//! |------|-------|----------|
//! | [`IrErrorKind::Syntax`] | JSON lexing/parsing | truncated document, trailing garbage, duplicate keys |
//! | [`IrErrorKind::Schema`] | JSON → IR | unknown node kind, missing/extra field, wrong JSON type, unsupported `version` |
//! | [`IrErrorKind::Semantic`] | IR → physical plan | unknown relation/column, column index out of range, type mismatch, join-key arity mismatch |
//!
//! Syntax and schema errors are producible without a catalog ([`crate::parse_ir`]);
//! semantic errors need the relation schemas and surface from
//! [`crate::Planner::plan`]. All three render as
//! `"<kind> error at line L, column C: <message>"` so tooling (and tests) can
//! anchor them to the query text.

use std::fmt;

use crate::json::{JsonError, Pos};

/// Which stage of the JSON → IR → plan pipeline rejected the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrErrorKind {
    /// The text is not well-formed JSON.
    Syntax,
    /// The JSON does not match the IR schema (see `crates/query/README.md`).
    Schema,
    /// The IR is well-formed but does not make sense against the catalog or the
    /// typing rules.
    Semantic,
}

impl IrErrorKind {
    fn name(self) -> &'static str {
        match self {
            IrErrorKind::Syntax => "syntax",
            IrErrorKind::Schema => "schema",
            IrErrorKind::Semantic => "semantic",
        }
    }
}

/// A positioned error from parsing, validating or planning a query IR document.
#[derive(Debug, Clone, PartialEq)]
pub struct IrError {
    /// The rejecting stage.
    pub kind: IrErrorKind,
    /// Human-readable description of what is wrong.
    pub message: String,
    /// Position in the source text the error is anchored to.
    pub pos: Pos,
}

impl IrError {
    /// A schema-stage error at `pos`.
    pub fn schema(pos: Pos, message: impl Into<String>) -> IrError {
        IrError {
            kind: IrErrorKind::Schema,
            message: message.into(),
            pos,
        }
    }

    /// A semantic-stage error at `pos`.
    pub fn semantic(pos: Pos, message: impl Into<String>) -> IrError {
        IrError {
            kind: IrErrorKind::Semantic,
            message: message.into(),
            pos,
        }
    }
}

impl From<JsonError> for IrError {
    fn from(err: JsonError) -> IrError {
        IrError {
            kind: IrErrorKind::Syntax,
            message: err.message,
            pos: err.pos,
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at {}: {}",
            self.kind.name(),
            self.pos,
            self.message
        )
    }
}

impl std::error::Error for IrError {}
