//! # query — a versioned JSON IR for logical plans, and its planner
//!
//! This crate is the engine's query surface: a small, versioned JSON IR for
//! **logical** plans (`scan` / `filter` / `project` / `aggregate` / `join` /
//! `sort` over named relations, with typed literals and the scalar expression
//! vocabulary of [`exec::expr`]), plus the **logical → physical planner** that
//! lowers a parsed plan onto [`exec::ops`] operator trees — choosing serial vs.
//! morsel-parallel operators from the [`exec::ScanConfig`], wiring parallel
//! join builds, and pushing SARGable predicates into the SMA/PSMA-pruned scan
//! path.
//!
//! The IR's byte-level contract (every node's JSON schema, the typing rules,
//! versioning policy and error taxonomy) lives in `crates/query/README.md`; the
//! parser is dependency-free (see [`json`]) and every rejection is an
//! [`IrError`] positioned at a line/column of the source text.
//!
//! ```
//! use datablocks::{DataType, Value};
//! use exec::ScanConfig;
//! use storage::{ColumnDef, Database, Relation, Schema};
//!
//! // A one-column relation, frozen into compressed Data Blocks.
//! let schema = Schema::new(vec![ColumnDef::new("qty", DataType::Int)]);
//! let mut rel = Relation::with_chunk_capacity("t", schema, 1024);
//! for i in 0..1_000i64 {
//!     rel.insert(vec![Value::Int(i % 100)]);
//! }
//! rel.freeze_all();
//! let mut db = Database::new();
//! db.add_relation(rel);
//!
//! // select count(*) from t where qty between 10 and 19
//! let ir = r#"{
//!   "version": 1,
//!   "plan": {
//!     "op": "aggregate",
//!     "input": {
//!       "op": "scan",
//!       "relation": "t",
//!       "columns": ["qty"],
//!       "predicates": [{"column": "qty", "between": [{"int": 10}, {"int": 19}]}]
//!     },
//!     "groups": [],
//!     "aggregates": [{"func": "count_star", "type": "int"}]
//!   }
//! }"#;
//! let plan = query::compile(&db, ScanConfig::default(), ir).unwrap();
//! assert_eq!(plan.execute(&db).value(0, 0), Value::Int(100));
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod fuzz;
pub mod ir;
pub mod json;
pub mod net;
pub mod planner;
pub mod service;
pub mod sql;
pub mod stream;

pub use error::{IrError, IrErrorKind};
pub use exec::CancelToken;
pub use ir::{parse_ir, Node, QueryIr, IR_VERSION};
pub use json::Pos;
pub use planner::{PhysicalPlan, Planner};
pub use service::{Connect, Error, QueryService, ServiceConfig, ServiceStats, Session};
pub use sql::{parse_sql, to_sql, SqlCatalog};
pub use stream::QueryStream;

use exec::ScanConfig;
use storage::Database;

/// Parse IR text and lower it to a physical plan in one step — the common
/// entry point for tools and workloads.
pub fn compile(db: &Database, config: ScanConfig, text: &str) -> Result<PhysicalPlan, IrError> {
    let ir = parse_ir(text)?;
    Planner::new(db, config).plan(&ir)
}
