//! Pull-based query results: a [`QueryStream`] yields the result **in
//! batches**, as execution produces them, instead of one materialised
//! [`Batch`].
//!
//! This is the execution shape a network service needs — the wire server
//! drains a stream into result frames, so a slow client backpressures the
//! scan's bounded reorder channel instead of forcing the server to buffer the
//! whole relation. In-process callers that want the old behaviour call
//! [`QueryStream::collect`].
//!
//! The stream owns everything its query needs to finish or die cleanly:
//!
//! * the instantiated operator tree (borrowing only the database);
//! * the session's [`CancelToken`], installed around every pull so the
//!   morsel-boundary cancellation checks in `exec` observe it;
//! * the admission grant of a service session — returned to the pool when
//!   the stream finishes, errors, is cancelled, or is dropped (idempotently,
//!   so a [`Session::close`](crate::Session::close) force-release may race a
//!   drop without double-counting).
//!
//! The operator tree has no error channel (it panics — see [`exec::ops`]);
//! every pull runs under `catch_unwind`, and the panic payload is classified
//! back into the typed [`Error`] taxonomy at this boundary: the cancel
//! message becomes [`Error::Cancelled`], cold-read panics become
//! [`Error::ColdRead`], anything else [`Error::Io`]. Errors are terminal: a
//! stream that reported one is exhausted.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use datablocks::DataType;
use exec::{cancel, Batch, BoxedOperator, CancelToken};

use crate::service::{Error, Grant};

/// A running query: an iterator of result [`Batch`]es in deterministic
/// (serial-scan) order, plus the output schema. Obtained from
/// [`Session::sql`](crate::Session::sql) and friends.
///
/// Dropping the stream before exhaustion cancels and joins any parallel scan
/// workers (the existing early-drop path) and releases the admission grant.
pub struct QueryStream<'db> {
    /// `None` once the stream finished, failed, or was cancelled.
    op: Option<BoxedOperator<'db>>,
    types: Vec<DataType>,
    cancel: CancelToken,
    grant: Option<Arc<Grant>>,
    /// Total rows yielded so far (final once the stream is exhausted).
    rows: u64,
}

impl<'db> QueryStream<'db> {
    pub(crate) fn new(
        op: BoxedOperator<'db>,
        types: Vec<DataType>,
        grant: Option<Arc<Grant>>,
        cancel: CancelToken,
    ) -> QueryStream<'db> {
        QueryStream {
            op: Some(op),
            types,
            cancel,
            grant,
            rows: 0,
        }
    }

    /// Column types of the stream's batches (available before the first pull).
    pub fn output_types(&self) -> &[DataType] {
        &self.types
    }

    /// The cancel token observed by this stream's pulls — the same token as
    /// [`Session::cancel_token`](crate::Session::cancel_token).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Rows yielded so far.
    pub fn rows_yielded(&self) -> u64 {
        self.rows
    }

    /// Pull the next result batch. `Ok(None)` once the query is complete (at
    /// which point the admission grant has been released); an `Err` is
    /// terminal — the workers are already joined and the grant released.
    ///
    /// Empty batches are never yielded.
    pub fn next_batch(&mut self) -> Result<Option<Batch>, Error> {
        loop {
            let Some(op) = self.op.as_mut() else {
                return Ok(None);
            };
            if self.cancel.is_cancelled() {
                // Dropping the tree cancels + joins streaming workers before
                // we report, so no worker outlives the cancellation.
                self.finish();
                return Err(Error::Cancelled);
            }
            let cancel = &self.cancel;
            match panic::catch_unwind(AssertUnwindSafe(|| {
                cancel::scoped(cancel, || op.next_batch())
            })) {
                Ok(Some(batch)) => {
                    if batch.is_empty() {
                        continue;
                    }
                    self.rows += batch.len() as u64;
                    return Ok(Some(batch));
                }
                Ok(None) => {
                    self.finish();
                    return Ok(None);
                }
                Err(payload) => {
                    self.finish();
                    return Err(classify_panic(payload));
                }
            }
        }
    }

    /// Drain the stream into one materialised [`Batch`] — the pre-streaming
    /// `Session` behaviour, kept as a convenience for tests, benches and
    /// small results.
    pub fn collect(mut self) -> Result<Batch, Error> {
        let types = self.types.clone();
        let mut out = Batch::new(&types);
        while let Some(batch) = self.next_batch()? {
            debug_assert_eq!(batch.types(), types, "stream batch schema drift");
            out.append(&batch);
        }
        Ok(out)
    }

    /// Drop the operator tree (joining any workers) and release the grant.
    fn finish(&mut self) {
        self.op = None;
        if let Some(grant) = self.grant.take() {
            grant.release();
        }
    }
}

impl std::fmt::Debug for QueryStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryStream")
            .field("types", &self.types)
            .field("rows_yielded", &self.rows)
            .field("exhausted", &self.op.is_none())
            .finish()
    }
}

impl Iterator for QueryStream<'_> {
    type Item = Result<Batch, Error>;

    /// Iterator view: `Some(Err(_))` exactly once on failure, then `None`.
    fn next(&mut self) -> Option<Result<Batch, Error>> {
        self.next_batch().transpose()
    }
}

/// Turn a caught execution panic back into the typed error taxonomy. The
/// operator tree's panic payloads are part of the execution contract: the
/// cancel path panics with [`cancel::CANCEL_MESSAGE`], unreadable spilled
/// blocks with a message naming the cold block.
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> Error {
    let detail = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("query execution panicked")
        .to_string();
    if detail.contains(cancel::CANCEL_MESSAGE) {
        Error::Cancelled
    } else if detail.contains("cold block") {
        Error::ColdRead(detail)
    } else {
        Error::Io(detail)
    }
}

#[cfg(test)]
mod tests {
    use datablocks::Value;
    use storage::{ColumnDef, Database, Schema};

    use crate::{Connect, Error};

    fn db_with_rows(rows: i64) -> Database {
        let mut db = Database::new();
        let rel = db.create_relation(
            "t",
            Schema::new(vec![ColumnDef::new("a", datablocks::DataType::Int)]),
        );
        for i in 0..rows {
            rel.insert(vec![Value::Int(i)]);
        }
        db.freeze_all();
        db
    }

    #[test]
    fn stream_batches_concatenate_to_collect() {
        let db = db_with_rows(20_000);
        let session = db.connect();
        let reference = session.sql("SELECT a FROM t").unwrap().collect().unwrap();
        let mut stream = session.sql("SELECT a FROM t").unwrap();
        assert_eq!(stream.output_types(), reference.types().as_slice());
        let mut rebuilt = exec::Batch::new(&reference.types());
        let mut batches = 0usize;
        while let Some(batch) = stream.next_batch().unwrap() {
            assert!(!batch.is_empty(), "streams never yield empty batches");
            rebuilt.append(&batch);
            batches += 1;
        }
        assert!(batches > 1, "20k rows must stream in multiple batches");
        assert_eq!(stream.rows_yielded(), reference.len() as u64);
        assert_eq!(rebuilt.len(), reference.len());
        for row in 0..reference.len() {
            assert_eq!(rebuilt.row(row), reference.row(row));
        }
    }

    #[test]
    fn cancelled_token_surfaces_as_cancelled_error() {
        let db = db_with_rows(1_000);
        let session = db.connect();
        let mut stream = session.sql("SELECT a FROM t").unwrap();
        stream.cancel_token().cancel();
        match stream.next_batch() {
            Err(Error::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // Terminal: the stream is exhausted afterwards.
        assert!(matches!(stream.next_batch(), Ok(None)));
    }

    #[test]
    fn iterator_yields_error_once_then_ends() {
        let db = db_with_rows(1_000);
        let session = db.connect();
        let mut stream = session.sql("SELECT a FROM t").unwrap();
        session.cancel_token().cancel();
        assert!(matches!(stream.next(), Some(Err(Error::Cancelled))));
        assert!(stream.next().is_none());
    }
}
