//! Seeded generation of catalogs, adversarial data, and well-typed IR plans.
//!
//! Everything derives from one xorshift64* stream (the `FaultInjector` PRNG,
//! no external deps), so a seed fully determines the case. Plans are
//! constructed to be *well-typed by the planner's rules* — a planner rejection
//! of a generated plan is itself a finding. Two engine-level hazards are
//! designed out rather than tolerated, because they are contracts the engine
//! genuinely does not offer:
//!
//! * **Floating-point reassociation.** Parallel double sums/averages may
//!   reassociate, so their outputs are only equal up to a relative tolerance.
//!   The generator tracks this as an `fp` taint per column and only lets
//!   tainted columns flow into tolerance-compatible positions: bare projection,
//!   join/sort *payload* (never keys), and count/min/max aggregation.
//!   Squaring double sum/avg inputs (`x*x`) keeps every term non-negative, so
//!   reassociated partial sums cannot cancel catastrophically and the 1e-9
//!   relative comparison stays meaningful.
//! * **Signed-zero keys.** Group/join key identity hashes double bit patterns
//!   (`-0.0 != 0.0` as a key) while `==` says they are equal. Base data never
//!   contains `-0.0`, and any double expression that could produce one
//!   (multiplication, division, or anything built atop them) is tracked as
//!   `nz` and kept out of key position. Comparisons and sort orders over `nz`
//!   doubles are fine — both sides use the same total order.
//!
//! Integer arithmetic is unchecked in the engine (overflow panics in debug
//! builds), so the generator tracks a saturating magnitude bound per
//! expression/column and refuses to build an expression — or an integer
//! `sum`/`avg` — whose bound exceeds [`INT_LIMIT`].

use datablocks::{DataType, Value};
use dbsimd::CmpOp;
use exec::ops::{AggFunc, JoinType, SortKey};
use exec::ArithOp;

use crate::ir::{
    AggItem, ExprKind, IrExpr, Node, PredicateKind, QueryIr, ScanPredicate, TypedExpr,
};
use crate::json::Pos;
use crate::IR_VERSION;

use super::{Catalog, ColumnSpec, FuzzCase, RelationData};

/// Generated nodes carry no source text, so every position is the origin.
const P0: Pos = Pos { line: 0, col: 0 };

/// Magnitude ceiling for integer expressions: large enough to keep boundary
/// constants interesting, small enough that sums over a few hundred rows and
/// one further addition stay far from `i64::MAX`.
const INT_LIMIT: i64 = 1 << 45;

/// Cap on the estimated row count of a join output (all-duplicate keys make
/// the worst case the full cross product).
const JOIN_ROWS_LIMIT: u64 = 60_000;

/// Integer constants around storage/compression boundaries (byte widths,
/// truncation offsets) plus small values that collide with generated data.
const INT_BOUNDARY: &[i64] = &[
    0,
    1,
    -1,
    2,
    3,
    255,
    256,
    65_535,
    65_536,
    -65_536,
    (1 << 31) - 1,
    1 << 31,
    -(1 << 31),
    1 << 40,
];

/// Double constants: exact binary fractions and round decimals, **never**
/// `-0.0`, NaN, or infinities (see the module docs on signed-zero keys; NaN
/// and infinities are unrepresentable in the IR's JSON anyway).
const DOUBLES: &[f64] = &[
    0.0, 1.0, -1.0, 0.5, -2.5, 3.25, 100.0, -1000.5, 1e6, -1e6, 0.125,
];

/// String constants: empty (falsy!), shared prefixes, non-ASCII, digit-looking.
const STRINGS: &[&str] = &["", "a", "b", "abc", "zzz", "héllo", "0", "aa"];

/// xorshift64* — the same generator the storage fault injector uses; good
/// enough mixing for fuzzing, fully deterministic, no dependencies.
pub(crate) struct Rng {
    state: u64,
}

impl Rng {
    pub(crate) fn new(seed: u64) -> Rng {
        // Zero is a fixed point of xorshift, and consecutive small seeds start
        // in similar states — force odd and warm up two steps to decorrelate.
        let mut rng = Rng { state: seed | 1 };
        rng.next_u64();
        rng.next_u64();
        rng
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n` (`n > 0`).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    pub(crate) fn usize_below(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// True with probability `num/den`.
    pub(crate) fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    pub(crate) fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_below(items.len())]
    }
}

/// What the generator knows about one column of a node's output.
#[derive(Clone)]
struct ColInfo {
    ty: DataType,
    /// Value may differ between regimes up to the reassociation tolerance
    /// (parallel double sum/avg output, or min/max over such).
    fp: bool,
    /// Double value may be `-0.0` (unsafe as a group/join key).
    nz: bool,
    /// Magnitude bound for integer values (≥ 1).
    bound: i64,
}

/// A node plus everything needed to keep building well-typed operators on top.
struct Typed {
    node: Node,
    cols: Vec<ColInfo>,
    /// Upper bound on the number of rows this node can produce.
    rows: u64,
}

/// What the generator knows about a scalar expression it just built.
struct ExprInfo {
    nz: bool,
    bound: i64,
}

impl ExprInfo {
    fn int(bound: i64) -> ExprInfo {
        ExprInfo { nz: false, bound }
    }
}

/// Generate the full case for a seed: catalog, data, and a well-typed plan.
pub fn generate_case(seed: u64) -> FuzzCase {
    let mut rng = Rng::new(seed);
    let catalog = gen_catalog(&mut rng);
    let ir = QueryIr {
        version: IR_VERSION,
        root: gen_plan(&mut rng, &catalog),
    };
    FuzzCase { seed, catalog, ir }
}

// ----------------------------------------------------------------- catalog

fn gen_catalog(rng: &mut Rng) -> Catalog {
    let relation_count = 1 + rng.usize_below(3);
    let mut relations = Vec::with_capacity(relation_count);
    for r in 0..relation_count {
        relations.push(gen_relation(rng, &format!("r{r}")));
    }
    Catalog { relations }
}

fn gen_relation(rng: &mut Rng, name: &str) -> RelationData {
    let column_count = 1 + rng.usize_below(5);
    let columns: Vec<ColumnSpec> = (0..column_count)
        .map(|c| ColumnSpec {
            name: format!("c{c}"),
            ty: match rng.below(4) {
                0 => DataType::Double,
                1 => DataType::Str,
                _ => DataType::Int,
            },
            nullable: rng.chance(1, 2),
        })
        .collect();

    // Row-count shapes: empty and single-row relations are common on purpose
    // (degenerate build sides, zero-row aggregates), with an occasional larger
    // relation so morsel parallelism and block boundaries actually trigger.
    let row_count = match rng.below(8) {
        0 => 0,
        1 => 1,
        2..=4 => 2 + rng.usize_below(9),
        _ => 40 + rng.usize_below(161),
    };

    // Per-column data profiles: all-NULL columns, NULL sprinkles, a "hot"
    // value repeated in ~90% of rows (duplicate keys / skew for joins and
    // group-by), otherwise draws from the adversarial pools.
    struct Profile {
        all_null: bool,
        null_in_8: u64,
        hot: Option<Value>,
    }
    let profiles: Vec<Profile> = columns
        .iter()
        .map(|col| {
            let all_null = col.nullable && rng.chance(1, 8);
            let null_in_8 = if col.nullable { 1 + rng.below(3) } else { 0 };
            let hot = rng.chance(1, 3).then(|| gen_value(rng, col.ty));
            Profile {
                all_null,
                null_in_8,
                hot,
            }
        })
        .collect();

    let rows: Vec<Vec<Value>> = (0..row_count)
        .map(|_| {
            columns
                .iter()
                .zip(&profiles)
                .map(|(col, profile)| {
                    if profile.all_null || rng.below(8) < profile.null_in_8 {
                        Value::Null
                    } else if let Some(hot) = &profile.hot {
                        if rng.chance(9, 10) {
                            hot.clone()
                        } else {
                            gen_value(rng, col.ty)
                        }
                    } else {
                        gen_value(rng, col.ty)
                    }
                })
                .collect()
        })
        .collect();

    RelationData {
        name: name.to_string(),
        chunk_capacity: *rng.pick(&[8usize, 32, 256]),
        freeze: rng.chance(5, 6),
        columns,
        rows,
    }
}

fn gen_value(rng: &mut Rng, ty: DataType) -> Value {
    match ty {
        DataType::Int => {
            if rng.chance(1, 2) {
                Value::Int(rng.below(10) as i64)
            } else {
                Value::Int(*rng.pick(INT_BOUNDARY))
            }
        }
        DataType::Double => Value::Double(*rng.pick(DOUBLES)),
        DataType::Str => Value::Str(rng.pick(STRINGS).to_string()),
    }
}

// -------------------------------------------------------------------- plan

fn gen_plan(rng: &mut Rng, catalog: &Catalog) -> Node {
    let depth = 1 + rng.below(4) as u32;
    gen_node(rng, catalog, depth).node
}

fn gen_node(rng: &mut Rng, catalog: &Catalog, depth: u32) -> Typed {
    if depth == 0 {
        return gen_scan(rng, catalog);
    }
    match rng.below(12) {
        0..=2 => gen_filter(rng, catalog, depth),
        3..=5 => gen_project(rng, catalog, depth),
        6..=7 => gen_aggregate(rng, catalog, depth),
        8..=9 => gen_join(rng, catalog, depth),
        _ => gen_sort(rng, catalog, depth),
    }
}

fn gen_scan(rng: &mut Rng, catalog: &Catalog) -> Typed {
    let rel = rng.pick(&catalog.relations).clone();

    // Magnitude bound per base column, from the actual data.
    let bounds: Vec<i64> = (0..rel.columns.len())
        .map(|c| {
            rel.rows
                .iter()
                .filter_map(|row| match &row[c] {
                    Value::Int(v) => Some(v.saturating_abs()),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
                .max(1)
        })
        .collect();

    // Projection: 1..=n columns, duplicates allowed (a column scanned twice
    // must agree with itself).
    let out_count = 1 + rng.usize_below(rel.columns.len());
    let mut columns = Vec::with_capacity(out_count);
    let mut cols = Vec::with_capacity(out_count);
    for _ in 0..out_count {
        let c = rng.usize_below(rel.columns.len());
        columns.push(rel.columns[c].name.clone());
        cols.push(ColInfo {
            ty: rel.columns[c].ty,
            fp: false,
            nz: false,
            bound: bounds[c],
        });
    }

    // SARGable predicates over any schema column (projected or not); literal
    // types must exactly match the column type.
    let mut predicates = Vec::new();
    for _ in 0..rng.below(3) {
        let c = rng.usize_below(rel.columns.len());
        let ty = rel.columns[c].ty;
        let kind = match rng.below(8) {
            0..=3 => PredicateKind::Cmp(gen_cmp_op(rng), gen_value(rng, ty)),
            4..=5 => PredicateKind::Between(gen_value(rng, ty), gen_value(rng, ty)),
            6 => PredicateKind::IsNull,
            _ => PredicateKind::IsNotNull,
        };
        predicates.push(ScanPredicate {
            pos: P0,
            column: rel.columns[c].name.clone(),
            kind,
        });
    }

    Typed {
        node: Node::Scan {
            pos: P0,
            relation: rel.name.clone(),
            columns,
            predicates,
        },
        cols,
        rows: rel.rows.len() as u64,
    }
}

fn gen_cmp_op(rng: &mut Rng) -> CmpOp {
    *rng.pick(&[
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

fn gen_filter(rng: &mut Rng, catalog: &Catalog, depth: u32) -> Typed {
    let input = gen_node(rng, catalog, depth - 1);

    // Directly over a scan, favour conjunctions of sargable comparisons so the
    // planner's push-down and range-merging paths get differential coverage.
    let sargable_input = matches!(input.node, Node::Scan { .. });
    let predicate = if sargable_input && rng.chance(1, 2) {
        let mut conjuncts = Vec::new();
        for _ in 0..1 + rng.below(4) {
            let conjunct = if rng.chance(3, 4) {
                let c = rng.usize_below(input.cols.len());
                let lit = IrExpr {
                    pos: P0,
                    kind: ExprKind::Lit(gen_value(rng, input.cols[c].ty)),
                };
                let col = IrExpr {
                    pos: P0,
                    kind: ExprKind::Col(c),
                };
                let op = gen_cmp_op(rng);
                // Literal-first operand order exercises the planner's flip.
                let (l, r) = if rng.chance(1, 4) {
                    (lit, col)
                } else {
                    (col, lit)
                };
                IrExpr {
                    pos: P0,
                    kind: ExprKind::Cmp(op, Box::new(l), Box::new(r)),
                }
            } else {
                gen_expr(rng, &input.cols, DataType::Int, 2).0
            };
            conjuncts.push(conjunct);
        }
        conjuncts
            .into_iter()
            .reduce(|acc, next| IrExpr {
                pos: P0,
                kind: ExprKind::And(Box::new(acc), Box::new(next)),
            })
            .expect("at least one conjunct")
    } else {
        let depth = 2 + rng.below(2) as u32;
        gen_expr(rng, &input.cols, DataType::Int, depth).0
    };

    Typed {
        node: Node::Filter {
            pos: P0,
            input: Box::new(input.node),
            predicate,
        },
        cols: input.cols,
        rows: input.rows,
    }
}

fn gen_project(rng: &mut Rng, catalog: &Catalog, depth: u32) -> Typed {
    let input = gen_node(rng, catalog, depth - 1);
    let expr_count = 1 + rng.usize_below(4);
    let mut exprs = Vec::with_capacity(expr_count);
    let mut cols = Vec::with_capacity(expr_count);
    for _ in 0..expr_count {
        if rng.chance(1, 3) {
            // Bare pass-through — the only projection shape fp-tainted columns
            // may flow through.
            let c = rng.usize_below(input.cols.len());
            exprs.push(TypedExpr {
                expr: IrExpr {
                    pos: P0,
                    kind: ExprKind::Col(c),
                },
                ty: input.cols[c].ty,
            });
            cols.push(input.cols[c].clone());
        } else {
            let want = *rng.pick(&[
                DataType::Int,
                DataType::Int,
                DataType::Double,
                DataType::Str,
            ]);
            let depth = 2 + rng.below(2) as u32;
            let (expr, info) = gen_expr(rng, &input.cols, want, depth);
            exprs.push(TypedExpr { expr, ty: want });
            cols.push(ColInfo {
                ty: want,
                fp: false,
                nz: info.nz,
                bound: info.bound,
            });
        }
    }
    Typed {
        node: Node::Project {
            pos: P0,
            input: Box::new(input.node),
            exprs,
        },
        cols,
        rows: input.rows,
    }
}

fn gen_aggregate(rng: &mut Rng, catalog: &Catalog, depth: u32) -> Typed {
    let input = gen_node(rng, catalog, depth - 1);
    let in_rows = input.rows.max(1);

    let mut groups = Vec::new();
    let mut cols = Vec::new();
    for _ in 0..rng.below(3) {
        // Group keys must be hashable without regime-dependence: never
        // fp-tainted (gen_expr already refuses fp columns) and, for doubles,
        // never able to produce -0.0 — so double keys are restricted to clean
        // column references and literals.
        let (expr, ty, bound) = match rng.below(3) {
            0 => {
                let (e, info) = gen_expr(rng, &input.cols, DataType::Int, 2);
                (e, DataType::Int, info.bound)
            }
            1 => {
                let (e, _) = gen_expr(rng, &input.cols, DataType::Str, 2);
                (e, DataType::Str, 1)
            }
            _ => {
                let clean: Vec<usize> = (0..input.cols.len())
                    .filter(|&c| {
                        input.cols[c].ty == DataType::Double
                            && !input.cols[c].fp
                            && !input.cols[c].nz
                    })
                    .collect();
                let e = if !clean.is_empty() && rng.chance(3, 4) {
                    IrExpr {
                        pos: P0,
                        kind: ExprKind::Col(*rng.pick(&clean)),
                    }
                } else {
                    IrExpr {
                        pos: P0,
                        kind: ExprKind::Lit(Value::Double(*rng.pick(DOUBLES))),
                    }
                };
                (e, DataType::Double, 1)
            }
        };
        groups.push(TypedExpr { expr, ty });
        cols.push(ColInfo {
            ty,
            fp: false,
            nz: false,
            bound,
        });
    }

    let fp_cols: Vec<usize> = (0..input.cols.len())
        .filter(|&c| input.cols[c].fp)
        .collect();
    let mut aggregates = Vec::new();
    for _ in 0..1 + rng.below(3) {
        let (item, info) = gen_aggregate_item(rng, &input.cols, &fp_cols, in_rows);
        cols.push(info);
        aggregates.push(item);
    }

    let rows = if groups.is_empty() { 1 } else { input.rows };
    Typed {
        node: Node::Aggregate {
            pos: P0,
            input: Box::new(input.node),
            groups,
            aggregates,
        },
        cols,
        rows,
    }
}

fn gen_aggregate_item(
    rng: &mut Rng,
    cols: &[ColInfo],
    fp_cols: &[usize],
    in_rows: u64,
) -> (AggItem, ColInfo) {
    let count_item = |func: AggFunc, expr: Option<IrExpr>, rows: u64| {
        (
            AggItem {
                pos: P0,
                func,
                expr,
                ty: DataType::Int,
            },
            ColInfo {
                ty: DataType::Int,
                fp: false,
                nz: false,
                bound: rows.max(1) as i64,
            },
        )
    };
    match rng.below(10) {
        0..=1 => count_item(AggFunc::CountStar, None, in_rows),
        2..=3 => {
            // `count` accepts any expression — including a bare fp-tainted
            // column, whose NULL-ness is regime-independent.
            let expr = if !fp_cols.is_empty() && rng.chance(1, 2) {
                IrExpr {
                    pos: P0,
                    kind: ExprKind::Col(*rng.pick(fp_cols)),
                }
            } else {
                let want = *rng.pick(&[DataType::Int, DataType::Double, DataType::Str]);
                gen_expr(rng, cols, want, 2).0
            };
            count_item(AggFunc::Count, Some(expr), in_rows)
        }
        4..=6 => {
            if rng.chance(1, 2) {
                // Integer sum: exact in every regime, but the accumulator is
                // unchecked — require bound × rows to stay under the limit,
                // else degrade to a count.
                let (expr, info) = gen_expr(rng, cols, DataType::Int, 2);
                let total = info.bound.saturating_mul(in_rows as i64);
                if total > INT_LIMIT {
                    return count_item(AggFunc::Count, Some(expr), in_rows);
                }
                (
                    AggItem {
                        pos: P0,
                        func: AggFunc::Sum,
                        expr: Some(expr),
                        ty: DataType::Int,
                    },
                    ColInfo {
                        ty: DataType::Int,
                        fp: false,
                        nz: false,
                        bound: total,
                    },
                )
            } else {
                // Double sum reassociates under parallel execution: square the
                // term so partial sums are monotone (no cancellation), and
                // taint the output column as fp.
                let (expr, _) = gen_expr(rng, cols, DataType::Double, 2);
                let squared = IrExpr {
                    pos: P0,
                    kind: ExprKind::Arith(ArithOp::Mul, Box::new(expr.clone()), Box::new(expr)),
                };
                (
                    AggItem {
                        pos: P0,
                        func: AggFunc::Sum,
                        expr: Some(squared),
                        ty: DataType::Double,
                    },
                    ColInfo {
                        ty: DataType::Double,
                        fp: true,
                        nz: false,
                        bound: 1,
                    },
                )
            }
        }
        7 => {
            if rng.chance(1, 2) {
                // Integer avg: integer sum (exact) + one division — regime
                // independent, but the sum still needs the overflow bound.
                let (expr, info) = gen_expr(rng, cols, DataType::Int, 2);
                if info.bound.saturating_mul(in_rows as i64) > INT_LIMIT {
                    return count_item(AggFunc::Count, Some(expr), in_rows);
                }
                (
                    AggItem {
                        pos: P0,
                        func: AggFunc::Avg,
                        expr: Some(expr),
                        ty: DataType::Double,
                    },
                    ColInfo {
                        ty: DataType::Double,
                        fp: false,
                        nz: false,
                        bound: 1,
                    },
                )
            } else {
                let (expr, _) = gen_expr(rng, cols, DataType::Double, 2);
                let squared = IrExpr {
                    pos: P0,
                    kind: ExprKind::Arith(ArithOp::Mul, Box::new(expr.clone()), Box::new(expr)),
                };
                (
                    AggItem {
                        pos: P0,
                        func: AggFunc::Avg,
                        expr: Some(squared),
                        ty: DataType::Double,
                    },
                    ColInfo {
                        ty: DataType::Double,
                        fp: true,
                        nz: false,
                        bound: 1,
                    },
                )
            }
        }
        _ => {
            let func = if rng.chance(1, 2) {
                AggFunc::Min
            } else {
                AggFunc::Max
            };
            // min/max select an element rather than combine values, so they
            // tolerate fp-tainted inputs (the selected value carries the
            // taint through).
            if !fp_cols.is_empty() && rng.chance(1, 2) {
                let c = *rng.pick(fp_cols);
                (
                    AggItem {
                        pos: P0,
                        func,
                        expr: Some(IrExpr {
                            pos: P0,
                            kind: ExprKind::Col(c),
                        }),
                        ty: cols[c].ty,
                    },
                    ColInfo {
                        ty: cols[c].ty,
                        fp: true,
                        nz: false,
                        bound: cols[c].bound,
                    },
                )
            } else {
                let want = *rng.pick(&[
                    DataType::Int,
                    DataType::Int,
                    DataType::Double,
                    DataType::Str,
                ]);
                let (expr, info) = gen_expr(rng, cols, want, 2);
                (
                    AggItem {
                        pos: P0,
                        func,
                        expr: Some(expr),
                        ty: want,
                    },
                    ColInfo {
                        ty: want,
                        fp: false,
                        nz: info.nz,
                        bound: info.bound,
                    },
                )
            }
        }
    }
}

fn gen_join(rng: &mut Rng, catalog: &Catalog, depth: u32) -> Typed {
    let build = gen_node(rng, catalog, depth - 1);
    let probe = gen_node(rng, catalog, depth - 1);

    // Worst case (all-duplicate keys) the inner join emits the cross product.
    if build.rows.saturating_mul(probe.rows) > JOIN_ROWS_LIMIT {
        return build;
    }

    // Key pairs: same declared type on both sides, neither side fp-tainted,
    // and double keys must be provably signed-zero-free (see module docs).
    let candidates: Vec<(usize, usize)> = (0..build.cols.len())
        .flat_map(|i| (0..probe.cols.len()).map(move |j| (i, j)))
        .filter(|&(i, j)| {
            let (b, p) = (&build.cols[i], &probe.cols[j]);
            b.ty == p.ty && !b.fp && !p.fp && !(b.ty == DataType::Double && (b.nz || p.nz))
        })
        .collect();
    if candidates.is_empty() {
        return build;
    }

    let mut build_keys = Vec::new();
    let mut probe_keys = Vec::new();
    for _ in 0..1 + rng.below(2) {
        let &(i, j) = rng.pick(&candidates);
        if !build_keys.contains(&i) && !probe_keys.contains(&j) {
            build_keys.push(i);
            probe_keys.push(j);
        }
    }

    let join_type = if rng.chance(2, 3) {
        JoinType::Inner
    } else {
        JoinType::ProbeSemi
    };
    let cols = match join_type {
        JoinType::Inner => build.cols.iter().chain(&probe.cols).cloned().collect(),
        JoinType::ProbeSemi => probe.cols.clone(),
    };
    let rows = match join_type {
        JoinType::Inner => build.rows.saturating_mul(probe.rows),
        JoinType::ProbeSemi => probe.rows,
    };

    Typed {
        node: Node::Join {
            pos: P0,
            join_type,
            build: Box::new(build.node),
            probe: Box::new(probe.node),
            build_keys,
            probe_keys,
            early_probe: rng.chance(1, 3),
        },
        cols,
        rows,
    }
}

fn gen_sort(rng: &mut Rng, catalog: &Catalog, depth: u32) -> Typed {
    let input = gen_node(rng, catalog, depth - 1);

    // Sorting BY an fp-tainted column could order rows differently per regime
    // when two values sit within tolerance of each other; fp columns ride
    // along as payload only. `nz` doubles are fine — total_cmp is total.
    let sortable: Vec<usize> = (0..input.cols.len())
        .filter(|&c| !input.cols[c].fp)
        .collect();
    if sortable.is_empty() {
        return input;
    }

    let key_count = 1 + rng.usize_below(sortable.len().min(3));
    let mut keys = Vec::new();
    for _ in 0..key_count {
        let column = *rng.pick(&sortable);
        if keys.iter().any(|k: &SortKey| k.column == column) {
            continue;
        }
        keys.push(SortKey {
            column,
            descending: rng.chance(1, 2),
        });
    }

    let limit = rng
        .chance(1, 2)
        .then(|| rng.usize_below(input.rows as usize + 3));
    let rows = limit.map_or(input.rows, |l| input.rows.min(l as u64));

    Typed {
        node: Node::Sort {
            pos: P0,
            input: Box::new(input.node),
            keys,
            limit,
        },
        cols: input.cols,
        rows,
    }
}

// ------------------------------------------------------------- expressions

/// Generate an expression over `cols` whose planner-inferred type is `want` or
/// `Any` — and, by construction, whose runtime value is of type `want` or NULL
/// (`Any`-inferred subexpressions always evaluate to NULL). Never references
/// fp-tainted columns.
fn gen_expr(rng: &mut Rng, cols: &[ColInfo], want: DataType, depth: u32) -> (IrExpr, ExprInfo) {
    match want {
        DataType::Int => gen_int_expr(rng, cols, depth),
        DataType::Double => gen_double_expr(rng, cols, depth),
        DataType::Str => gen_str_expr(rng, cols, depth),
    }
}

fn clean_cols_of(cols: &[ColInfo], ty: DataType) -> Vec<usize> {
    (0..cols.len())
        .filter(|&c| cols[c].ty == ty && !cols[c].fp)
        .collect()
}

fn expr(kind: ExprKind) -> IrExpr {
    IrExpr { pos: P0, kind }
}

fn lit(value: Value) -> IrExpr {
    expr(ExprKind::Lit(value))
}

fn gen_int_leaf(rng: &mut Rng, cols: &[ColInfo]) -> (IrExpr, ExprInfo) {
    let int_cols = clean_cols_of(cols, DataType::Int);
    if rng.chance(1, 10) {
        return (lit(Value::Null), ExprInfo::int(1));
    }
    if !int_cols.is_empty() && rng.chance(1, 2) {
        let c = *rng.pick(&int_cols);
        (expr(ExprKind::Col(c)), ExprInfo::int(cols[c].bound))
    } else {
        let v = if rng.chance(1, 2) {
            rng.below(10) as i64
        } else {
            *rng.pick(INT_BOUNDARY)
        };
        (lit(Value::Int(v)), ExprInfo::int(v.saturating_abs().max(1)))
    }
}

fn gen_int_expr(rng: &mut Rng, cols: &[ColInfo], depth: u32) -> (IrExpr, ExprInfo) {
    if depth == 0 || rng.chance(1, 3) {
        return gen_int_leaf(rng, cols);
    }
    match rng.below(6) {
        0 | 1 => {
            let op = *rng.pick(&[ArithOp::Add, ArithOp::Sub, ArithOp::Mul]);
            let (l, li) = gen_int_expr(rng, cols, depth - 1);
            let (r, ri) = gen_int_expr(rng, cols, depth - 1);
            let bound = match op {
                ArithOp::Mul => li.bound.saturating_mul(ri.bound),
                _ => li.bound.saturating_add(ri.bound),
            };
            if bound > INT_LIMIT {
                // The combination could overflow the unchecked integer ops;
                // keep the left operand instead.
                return (l, li);
            }
            (
                expr(ExprKind::Arith(op, Box::new(l), Box::new(r))),
                ExprInfo::int(bound),
            )
        }
        2 => {
            // Comparison family: both operands from the same type family
            // (string↔number comparisons are planner errors).
            let op = gen_cmp_op(rng);
            let family = *rng.pick(&[
                DataType::Int,
                DataType::Int,
                DataType::Double,
                DataType::Str,
            ]);
            let (l, _) = gen_expr(rng, cols, family, depth - 1);
            let (r, _) = gen_expr(rng, cols, family, depth - 1);
            (
                expr(ExprKind::Cmp(op, Box::new(l), Box::new(r))),
                ExprInfo::int(1),
            )
        }
        3 => {
            let (l, _) = gen_int_expr(rng, cols, depth - 1);
            let (r, _) = gen_int_expr(rng, cols, depth - 1);
            let kind = if rng.chance(1, 2) {
                ExprKind::And(Box::new(l), Box::new(r))
            } else {
                ExprKind::Or(Box::new(l), Box::new(r))
            };
            (expr(kind), ExprInfo::int(1))
        }
        4 => {
            let (c, _) = gen_int_expr(rng, cols, depth - 1);
            let (t, ti) = gen_int_expr(rng, cols, depth - 1);
            let (e, ei) = gen_int_expr(rng, cols, depth - 1);
            (
                expr(ExprKind::Case(Box::new(c), Box::new(t), Box::new(e))),
                ExprInfo::int(ti.bound.max(ei.bound)),
            )
        }
        _ => gen_int_leaf(rng, cols),
    }
}

fn gen_double_leaf(rng: &mut Rng, cols: &[ColInfo]) -> (IrExpr, ExprInfo) {
    let double_cols = clean_cols_of(cols, DataType::Double);
    if rng.chance(1, 10) {
        return (
            lit(Value::Null),
            ExprInfo {
                nz: false,
                bound: 1,
            },
        );
    }
    if !double_cols.is_empty() && rng.chance(1, 2) {
        let c = *rng.pick(&double_cols);
        (
            expr(ExprKind::Col(c)),
            ExprInfo {
                nz: cols[c].nz,
                bound: 1,
            },
        )
    } else {
        (
            lit(Value::Double(*rng.pick(DOUBLES))),
            ExprInfo {
                nz: false,
                bound: 1,
            },
        )
    }
}

fn gen_double_expr(rng: &mut Rng, cols: &[ColInfo], depth: u32) -> (IrExpr, ExprInfo) {
    if depth == 0 || rng.chance(1, 3) {
        return gen_double_leaf(rng, cols);
    }
    match rng.below(4) {
        0 => {
            // add/sub/mul with at least the left operand double-want, so the
            // inferred type can never be Int (see module invariant).
            let op = *rng.pick(&[ArithOp::Add, ArithOp::Sub, ArithOp::Mul]);
            let (l, li) = gen_double_expr(rng, cols, depth - 1);
            let (r, ri) = if rng.chance(1, 3) {
                let (r, _) = gen_int_expr(rng, cols, depth - 1);
                (
                    r,
                    ExprInfo {
                        nz: false,
                        bound: 1,
                    },
                )
            } else {
                gen_double_expr(rng, cols, depth - 1)
            };
            let nz = match op {
                // A product of doubles can round to -0.0 (e.g. -1e-200 * 1e-200
                // underflows); treat every multiply as signed-zero-capable.
                ArithOp::Mul => true,
                _ => li.nz || ri.nz,
            };
            (
                expr(ExprKind::Arith(op, Box::new(l), Box::new(r))),
                ExprInfo { nz, bound: 1 },
            )
        }
        1 => {
            // Division always infers double, whatever the operand mix; ÷0 is
            // NULL, and a negative-over-huge quotient can be -0.0.
            let want_l = *rng.pick(&[DataType::Int, DataType::Double]);
            let want_r = *rng.pick(&[DataType::Int, DataType::Double]);
            let (l, _) = gen_expr(rng, cols, want_l, depth - 1);
            let (r, _) = gen_expr(rng, cols, want_r, depth - 1);
            (
                expr(ExprKind::Arith(ArithOp::Div, Box::new(l), Box::new(r))),
                ExprInfo { nz: true, bound: 1 },
            )
        }
        2 => {
            let (c, _) = gen_int_expr(rng, cols, depth - 1);
            let (t, ti) = gen_double_expr(rng, cols, depth - 1);
            let (e, ei) = gen_double_expr(rng, cols, depth - 1);
            (
                expr(ExprKind::Case(Box::new(c), Box::new(t), Box::new(e))),
                ExprInfo {
                    nz: ti.nz || ei.nz,
                    bound: 1,
                },
            )
        }
        _ => gen_double_leaf(rng, cols),
    }
}

fn gen_str_expr(rng: &mut Rng, cols: &[ColInfo], depth: u32) -> (IrExpr, ExprInfo) {
    let str_cols = clean_cols_of(cols, DataType::Str);
    let leaf = |rng: &mut Rng| {
        if rng.chance(1, 8) {
            lit(Value::Null)
        } else if !str_cols.is_empty() && rng.chance(1, 2) {
            expr(ExprKind::Col(str_cols[rng.usize_below(str_cols.len())]))
        } else {
            lit(Value::Str(rng.pick(STRINGS).to_string()))
        }
    };
    if depth == 0 || rng.chance(2, 3) {
        return (
            leaf(rng),
            ExprInfo {
                nz: false,
                bound: 1,
            },
        );
    }
    // The only non-leaf string constructor is CASE with string branches.
    let (c, _) = gen_int_expr(rng, cols, depth - 1);
    let (t, e) = (leaf(rng), leaf(rng));
    (
        expr(ExprKind::Case(Box::new(c), Box::new(t), Box::new(e))),
        ExprInfo {
            nz: false,
            bound: 1,
        },
    )
}
