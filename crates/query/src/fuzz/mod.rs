//! Deterministic IR fuzzing: generated catalogs and well-typed plans, a
//! row-at-a-time reference interpreter, a differential driver, and a greedy
//! shrinker producing self-contained repros.
//!
//! The contract under test is the one `tests/ir_differential.rs` pins for the
//! hand-written TPC-H queries, generalised to arbitrary well-typed plans: for
//! every generated case, the planner-lowered execution must agree with the
//! [reference interpreter](reference_rows) across threads {1, 4} × {in-memory,
//! thrash-cache spill} regimes — byte-identical at one thread, doubles equal up
//! to reassociation above — and the IR serializer must be a fixed point
//! (`parse_ir(ir.to_pretty()).to_pretty() == ir.to_pretty()`).
//!
//! Everything is a pure function of the seed: the same seed produces the same
//! catalog, the same plan, and the same verdict on every machine, which is what
//! makes CI failures one-command reproducible (`fuzz_ir --seed N --count 1`).

mod generator;
mod reference;
mod shrink;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use datablocks::{DataType, Value};
use exec::{Batch, ScanConfig};
use storage::{ColumnDef, Database, Relation, Schema, SpillPolicy};

use crate::ir::QueryIr;
use crate::json::{self, Json, JsonValue, Pos};
use crate::Planner;

pub use generator::generate_case;
pub use shrink::{case_size, shrink_case};

/// One column of a generated relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name (unique within the relation).
    pub name: String,
    /// Logical type.
    pub ty: DataType,
    /// May the column hold NULLs?
    pub nullable: bool,
}

/// A generated relation: schema, storage shape, and its rows in insertion
/// order (the order every scan regime reproduces).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationData {
    /// Relation name.
    pub name: String,
    /// Records per chunk / Data Block (small values force many blocks).
    pub chunk_capacity: usize,
    /// Freeze all rows into compressed cold blocks after loading?
    pub freeze: bool,
    /// Column definitions.
    pub columns: Vec<ColumnSpec>,
    /// Row values, in insertion order.
    pub rows: Vec<Vec<Value>>,
}

/// A generated catalog: the relations a fuzz case's plan may scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    /// The relations, by generation order.
    pub relations: Vec<RelationData>,
}

impl crate::sql::SqlCatalog for Catalog {
    fn relation_columns(&self, relation: &str) -> Option<Vec<(String, DataType)>> {
        self.relations
            .iter()
            .find(|rel| rel.name == relation)
            .map(|rel| rel.columns.iter().map(|c| (c.name.clone(), c.ty)).collect())
    }
}

impl Catalog {
    /// Materialise the catalog as an in-memory [`Database`].
    pub fn build_database(&self) -> Database {
        let mut db = Database::new();
        for rel in &self.relations {
            let schema = Schema::new(
                rel.columns
                    .iter()
                    .map(|c| {
                        if c.nullable {
                            ColumnDef::nullable(c.name.clone(), c.ty)
                        } else {
                            ColumnDef::new(c.name.clone(), c.ty)
                        }
                    })
                    .collect(),
            );
            let mut relation = Relation::with_chunk_capacity(&rel.name, schema, rel.chunk_capacity);
            for row in &rel.rows {
                relation.insert(row.clone());
            }
            if rel.freeze {
                relation.freeze_all();
            }
            db.add_relation(relation);
        }
        db
    }
}

/// One self-contained fuzz case: the seed it came from, the catalog (schemas +
/// data), and the IR plan to check.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// The xorshift seed that generated (or reproduces) this case.
    pub seed: u64,
    /// Relations the plan runs against.
    pub catalog: Catalog,
    /// The logical plan.
    pub ir: QueryIr,
}

/// What a differential check found wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// `parse_ir(to_pretty(ir))` failed or was not a fixed point.
    RoundTrip,
    /// The planner (or the reference interpreter) rejected a case that should
    /// be well-typed.
    Plan,
    /// Planning the same IR twice rendered different physical plans.
    Render,
    /// Executed results disagree with the reference interpreter (including a
    /// panic during execution).
    Result,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureKind::RoundTrip => "round-trip",
            FailureKind::Plan => "plan",
            FailureKind::Render => "render",
            FailureKind::Result => "result",
        })
    }
}

/// A failed differential check.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which stage disagreed.
    pub kind: FailureKind,
    /// The regime the disagreement appeared in (e.g. `threads=4 spill`).
    pub regime: String,
    /// Human-readable description of the first disagreement.
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @ {}] {}", self.kind, self.regime, self.detail)
    }
}

/// Generate the case for `seed` and run the full differential check.
pub fn run_seed(seed: u64) -> Result<(), Failure> {
    check_case(&generate_case(seed))
}

/// Run the full differential check on one case: serializer round-trip,
/// reference execution, then planner-lowered execution across threads {1, 4} ×
/// {memory, thrash-cache spill}, compared value-by-value.
pub fn check_case(case: &FuzzCase) -> Result<(), Failure> {
    check_case_with(case, None)
}

/// The rows the reference interpreter computes for a case (exposed so tests
/// can assert against the oracle directly).
pub fn reference_rows(case: &FuzzCase) -> Result<Vec<Vec<Value>>, String> {
    reference::execute(&case.catalog, &case.ir).map(|table| table.rows)
}

/// Like [`check_case`], but executing `engine_ir` (when given) through the
/// planner while the reference interpreter runs `case.ir`. Passing a mutated
/// plan as `engine_ir` simulates a planner mis-compilation — the harness's
/// self-test injects a flipped comparison this way and checks the differential
/// catches and shrinks it.
pub fn check_case_with(case: &FuzzCase, engine_ir: Option<&QueryIr>) -> Result<(), Failure> {
    // Stage 1: the serializer must be a fixed point of parse → print.
    let text = case.ir.to_pretty();
    let reparsed = crate::parse_ir(&text).map_err(|err| Failure {
        kind: FailureKind::RoundTrip,
        regime: "serializer".into(),
        detail: format!("to_pretty output does not re-parse: {err}"),
    })?;
    if reparsed.to_pretty() != text {
        return Err(Failure {
            kind: FailureKind::RoundTrip,
            regime: "serializer".into(),
            detail: "parse(to_pretty(ir)).to_pretty() differs from to_pretty(ir)".into(),
        });
    }

    // Stage 1b: the SQL renderer must round-trip through the SQL front end —
    // to_sql(ir) re-parsed against the case's catalog reproduces the IR
    // exactly. This pins the lexer, parser, lowering and printer against every
    // generated plan shape.
    let sql = crate::sql::to_sql(&case.ir);
    match crate::sql::parse_sql(&case.catalog, &sql) {
        Ok(from_sql) => {
            if from_sql.to_pretty() != text {
                return Err(Failure {
                    kind: FailureKind::RoundTrip,
                    regime: "sql".into(),
                    detail: format!(
                        "parse_sql(to_sql(ir)) differs from ir\nsql: {sql}\nreparsed:\n{}\noriginal:\n{text}",
                        from_sql.to_pretty()
                    ),
                });
            }
        }
        Err(err) => {
            return Err(Failure {
                kind: FailureKind::RoundTrip,
                regime: "sql".into(),
                detail: format!("to_sql output does not re-parse: {err}\nsql: {sql}"),
            });
        }
    }

    // Stage 2: the oracle. Generated plans are well-typed by construction, so
    // a reference rejection is itself a bug (in the generator or the typing
    // rules drifting apart).
    let expected = reference::execute(&case.catalog, &case.ir).map_err(|err| Failure {
        kind: FailureKind::Plan,
        regime: "reference".into(),
        detail: format!("reference interpreter rejected the plan: {err}"),
    })?;

    // Stage 3: the engine, across regimes.
    let memory = case.catalog.build_database();
    let mut spilled = case.catalog.build_database();
    spilled
        .enable_spill(SpillPolicy::with_cache_capacity(1))
        .map_err(|err| Failure {
            kind: FailureKind::Plan,
            regime: "spill".into(),
            detail: format!("enable_spill failed: {err}"),
        })?;
    let target = engine_ir.unwrap_or(&case.ir);

    for threads in [1usize, 4] {
        let config = ScanConfig::default().with_threads(threads);
        let planner = Planner::new(&memory, config);
        let plan = planner.plan(target).map_err(|err| Failure {
            kind: FailureKind::Plan,
            regime: format!("threads={threads}"),
            detail: format!("planner rejected the plan: {err}"),
        })?;
        // Render stability: lowering the same IR twice must produce the same
        // rendered physical plan, byte for byte.
        let again = planner
            .plan(target)
            .expect("second lowering of an accepted plan");
        if plan.to_string() != again.to_string() {
            return Err(Failure {
                kind: FailureKind::Render,
                regime: format!("threads={threads}"),
                detail: format!(
                    "two lowerings of the same IR render differently:\n{plan}\n---\n{again}"
                ),
            });
        }
        if engine_ir.is_none() && plan.output_types() != expected.types.as_slice() {
            return Err(Failure {
                kind: FailureKind::Result,
                regime: format!("threads={threads}"),
                detail: format!(
                    "output types disagree: planner {:?} vs reference {:?}",
                    plan.output_types(),
                    expected.types
                ),
            });
        }
        for (regime, db) in [("memory", &memory), ("spill", &spilled)] {
            let label = format!("threads={threads} {regime}");
            let batch =
                catch_unwind(AssertUnwindSafe(|| plan.execute(db))).map_err(|_| Failure {
                    kind: FailureKind::Result,
                    regime: label.clone(),
                    detail: "execution panicked".into(),
                })?;
            compare(&label, &expected.rows, &batch, threads == 1)?;
        }
    }
    Ok(())
}

/// Compare engine output against reference rows. `exact` demands equality for
/// every value; otherwise doubles are compared up to reassociation (relative
/// 1e-9) because parallel double sums reassociate — the same contract
/// `tests/ir_differential.rs` uses.
fn compare(
    label: &str,
    expected: &[Vec<Value>],
    actual: &Batch,
    exact: bool,
) -> Result<(), Failure> {
    let fail = |detail: String| {
        Err(Failure {
            kind: FailureKind::Result,
            regime: label.to_string(),
            detail,
        })
    };
    if expected.len() != actual.len() {
        return fail(format!(
            "row count: reference {} vs engine {}",
            expected.len(),
            actual.len()
        ));
    }
    for (row, expected_row) in expected.iter().enumerate() {
        let actual_row = actual.row(row);
        if expected_row.len() != actual_row.len() {
            return fail(format!(
                "row {row}: column count {} vs {}",
                expected_row.len(),
                actual_row.len()
            ));
        }
        for (col, (ev, av)) in expected_row.iter().zip(&actual_row).enumerate() {
            let agree = match (ev, av) {
                (Value::Double(x), Value::Double(y)) if !exact => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() / scale < 1e-9
                }
                _ => ev == av,
            };
            if !agree {
                return fail(format!(
                    "row {row} col {col}: reference {ev:?} vs engine {av:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Shrink a failing case to a (locally) minimal one reproducing the same kind
/// of failure under the full differential check.
pub fn minimize(case: &FuzzCase, kind: FailureKind) -> FuzzCase {
    shrink_case(
        case,
        &|candidate| matches!(check_case(candidate), Err(f) if f.kind == kind),
    )
}

/// Flip the first `le` comparison in the plan to `lt` (depth-first: scan
/// predicates first, then expressions). Returns `None` when the plan has no
/// `le` anywhere.
///
/// Running the flipped plan through the engine while the reference interprets
/// the original is observationally identical to a planner that mis-compiles
/// `<=` as `<` (e.g. a flipped comparison in push-down range merging) — the
/// harness's acceptance self-test injects exactly this bug.
pub fn flip_first_le(ir: &QueryIr) -> Option<QueryIr> {
    use crate::ir::{ExprKind, IrExpr, Node, PredicateKind};
    use dbsimd::CmpOp;

    fn flip_expr(expr: &mut IrExpr) -> bool {
        match &mut expr.kind {
            ExprKind::Cmp(op @ CmpOp::Le, _, _) => {
                *op = CmpOp::Lt;
                true
            }
            ExprKind::Arith(_, l, r)
            | ExprKind::Cmp(_, l, r)
            | ExprKind::And(l, r)
            | ExprKind::Or(l, r) => flip_expr(l) || flip_expr(r),
            ExprKind::Case(c, t, e) => flip_expr(c) || flip_expr(t) || flip_expr(e),
            ExprKind::Col(_) | ExprKind::Lit(_) => false,
        }
    }

    fn flip_node(node: &mut Node) -> bool {
        match node {
            Node::Scan { predicates, .. } => predicates.iter_mut().any(|p| {
                if let PredicateKind::Cmp(op @ CmpOp::Le, _) = &mut p.kind {
                    *op = CmpOp::Lt;
                    true
                } else {
                    false
                }
            }),
            Node::Filter {
                input, predicate, ..
            } => flip_node(input) || flip_expr(predicate),
            Node::Project { input, exprs, .. } => {
                flip_node(input) || exprs.iter_mut().any(|te| flip_expr(&mut te.expr))
            }
            Node::Aggregate {
                input,
                groups,
                aggregates,
                ..
            } => {
                flip_node(input)
                    || groups.iter_mut().any(|te| flip_expr(&mut te.expr))
                    || aggregates
                        .iter_mut()
                        .any(|agg| agg.expr.as_mut().is_some_and(flip_expr))
            }
            Node::Join { build, probe, .. } => flip_node(build) || flip_node(probe),
            Node::Sort { input, .. } => flip_node(input),
        }
    }

    let mut flipped = ir.clone();
    flip_node(&mut flipped.root).then_some(flipped)
}

// ------------------------------------------------------------------ repro files

fn j(value: JsonValue) -> Json {
    Json {
        pos: Pos { line: 0, col: 0 },
        value,
    }
}

fn jobj(fields: Vec<(&str, Json)>) -> Json {
    j(JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    ))
}

fn value_json(value: &Value) -> Json {
    match value {
        Value::Null => jobj(vec![("null", j(JsonValue::Null))]),
        Value::Int(v) => jobj(vec![("int", j(JsonValue::Int(*v)))]),
        Value::Double(v) => jobj(vec![("double", j(JsonValue::Double(*v)))]),
        Value::Str(s) => jobj(vec![("str", j(JsonValue::Str(s.clone())))]),
    }
}

fn type_name(ty: DataType) -> &'static str {
    match ty {
        DataType::Int => "int",
        DataType::Double => "double",
        DataType::Str => "str",
    }
}

/// Serialize a case as a self-contained repro document: seed, full catalog
/// dump (schemas + rows), and the IR. `parse_repro` reads it back; the
/// `fuzz_ir` binary writes one next to a failing CI run and replays it with
/// `--repro`.
pub fn repro_json(case: &FuzzCase) -> String {
    let relations: Vec<Json> = case
        .catalog
        .relations
        .iter()
        .map(|rel| {
            jobj(vec![
                ("relation", j(JsonValue::Str(rel.name.clone()))),
                (
                    "chunk_capacity",
                    j(JsonValue::Int(rel.chunk_capacity as i64)),
                ),
                ("freeze", j(JsonValue::Bool(rel.freeze))),
                (
                    "columns",
                    j(JsonValue::Array(
                        rel.columns
                            .iter()
                            .map(|c| {
                                jobj(vec![
                                    ("name", j(JsonValue::Str(c.name.clone()))),
                                    ("type", j(JsonValue::Str(type_name(c.ty).into()))),
                                    ("nullable", j(JsonValue::Bool(c.nullable))),
                                ])
                            })
                            .collect(),
                    )),
                ),
                (
                    "rows",
                    j(JsonValue::Array(
                        rel.rows
                            .iter()
                            .map(|row| j(JsonValue::Array(row.iter().map(value_json).collect())))
                            .collect(),
                    )),
                ),
            ])
        })
        .collect();
    let ir = json::parse(&case.ir.to_pretty()).expect("to_pretty output is valid JSON");
    let doc = jobj(vec![
        ("seed", j(JsonValue::Int(case.seed as i64))),
        ("catalog", j(JsonValue::Array(relations))),
        ("ir", ir),
    ]);
    json::to_pretty(&doc.value)
}

/// Parse a repro document written by [`repro_json`].
pub fn parse_repro(text: &str) -> Result<FuzzCase, String> {
    let doc = json::parse(text).map_err(|e| format!("repro is not valid JSON: {e}"))?;
    let fields = match &doc.value {
        JsonValue::Object(fields) => fields,
        other => {
            return Err(format!(
                "repro must be an object, found {}",
                other.kind_name()
            ))
        }
    };
    let get = |key: &str| -> Result<&Json, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("repro is missing the `{key}` field"))
    };
    let seed = match &get("seed")?.value {
        JsonValue::Int(v) => *v as u64,
        other => {
            return Err(format!(
                "`seed` must be an integer, found {}",
                other.kind_name()
            ))
        }
    };
    let relations_json = match &get("catalog")?.value {
        JsonValue::Array(items) => items,
        other => {
            return Err(format!(
                "`catalog` must be an array, found {}",
                other.kind_name()
            ))
        }
    };
    let mut relations = Vec::with_capacity(relations_json.len());
    for rel_json in relations_json {
        relations.push(parse_relation(rel_json)?);
    }
    let ir_text = json::to_pretty(&get("ir")?.value);
    let ir = crate::parse_ir(&ir_text).map_err(|e| format!("repro `ir` does not parse: {e}"))?;
    Ok(FuzzCase {
        seed,
        catalog: Catalog { relations },
        ir,
    })
}

fn parse_relation(json: &Json) -> Result<RelationData, String> {
    let fields = match &json.value {
        JsonValue::Object(fields) => fields,
        other => {
            return Err(format!(
                "a catalog relation must be an object, found {}",
                other.kind_name()
            ))
        }
    };
    let get = |key: &str| -> Result<&Json, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("catalog relation is missing `{key}`"))
    };
    let name = match &get("relation")?.value {
        JsonValue::Str(s) => s.clone(),
        other => {
            return Err(format!(
                "`relation` must be a string, found {}",
                other.kind_name()
            ))
        }
    };
    let chunk_capacity = match &get("chunk_capacity")?.value {
        JsonValue::Int(v) if *v > 0 => *v as usize,
        _ => return Err("`chunk_capacity` must be a positive integer".into()),
    };
    let freeze = match &get("freeze")?.value {
        JsonValue::Bool(b) => *b,
        other => {
            return Err(format!(
                "`freeze` must be a boolean, found {}",
                other.kind_name()
            ))
        }
    };
    let columns_json = match &get("columns")?.value {
        JsonValue::Array(items) => items,
        other => {
            return Err(format!(
                "`columns` must be an array, found {}",
                other.kind_name()
            ))
        }
    };
    let mut columns = Vec::with_capacity(columns_json.len());
    for col in columns_json {
        let col_fields = match &col.value {
            JsonValue::Object(fields) => fields,
            other => {
                return Err(format!(
                    "a column must be an object, found {}",
                    other.kind_name()
                ))
            }
        };
        let field = |key: &str| -> Result<&Json, String> {
            col_fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("column is missing `{key}`"))
        };
        let name = match &field("name")?.value {
            JsonValue::Str(s) => s.clone(),
            _ => return Err("column `name` must be a string".into()),
        };
        let ty = match &field("type")?.value {
            JsonValue::Str(s) => match s.as_str() {
                "int" => DataType::Int,
                "double" => DataType::Double,
                "str" => DataType::Str,
                other => return Err(format!("unknown column type {other:?}")),
            },
            _ => return Err("column `type` must be a string".into()),
        };
        let nullable = match &field("nullable")?.value {
            JsonValue::Bool(b) => *b,
            _ => return Err("column `nullable` must be a boolean".into()),
        };
        columns.push(ColumnSpec { name, ty, nullable });
    }
    let rows_json = match &get("rows")?.value {
        JsonValue::Array(items) => items,
        other => {
            return Err(format!(
                "`rows` must be an array, found {}",
                other.kind_name()
            ))
        }
    };
    let mut rows = Vec::with_capacity(rows_json.len());
    for row_json in rows_json {
        let cells = match &row_json.value {
            JsonValue::Array(items) => items,
            other => {
                return Err(format!(
                    "a row must be an array, found {}",
                    other.kind_name()
                ))
            }
        };
        if cells.len() != columns.len() {
            return Err(format!(
                "row has {} values but the relation has {} columns",
                cells.len(),
                columns.len()
            ));
        }
        let mut row = Vec::with_capacity(cells.len());
        for cell in cells {
            row.push(parse_cell(cell)?);
        }
        rows.push(row);
    }
    Ok(RelationData {
        name,
        chunk_capacity,
        freeze,
        columns,
        rows,
    })
}

fn parse_cell(json: &Json) -> Result<Value, String> {
    let fields = match &json.value {
        JsonValue::Object(fields) if fields.len() == 1 => fields,
        _ => return Err("a cell must be a single-field literal object".into()),
    };
    let (key, value) = &fields[0];
    match (key.as_str(), &value.value) {
        ("null", JsonValue::Null) => Ok(Value::Null),
        ("int", JsonValue::Int(v)) => Ok(Value::Int(*v)),
        ("double", JsonValue::Double(v)) => Ok(Value::Double(*v)),
        ("double", JsonValue::Int(v)) => Ok(Value::Double(*v as f64)),
        ("str", JsonValue::Str(s)) => Ok(Value::Str(s.clone())),
        _ => Err(format!("invalid literal cell kind {key:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        for seed in [1u64, 7, 42, 1000] {
            let a = generate_case(seed);
            let b = generate_case(seed);
            assert_eq!(a, b, "seed {seed} must regenerate identically");
        }
    }

    #[test]
    fn nearby_seeds_generate_different_cases() {
        let a = generate_case(1);
        let b = generate_case(2);
        assert_ne!(repro_json(&a), repro_json(&b));
    }

    #[test]
    fn repro_documents_round_trip() {
        for seed in [1u64, 5, 23] {
            let case = generate_case(seed);
            let text = repro_json(&case);
            let parsed = parse_repro(&text).expect("repro parses");
            // Compare through the serializer: re-parsed IR carries real source
            // positions while generated IR carries the origin, so structural
            // equality is the wrong check.
            assert_eq!(repro_json(&parsed), text, "seed {seed}");
            assert_eq!(parsed.seed, case.seed);
            assert_eq!(parsed.catalog, case.catalog);
        }
    }

    #[test]
    fn small_seed_sweep_passes() {
        for seed in 1..=25u64 {
            if let Err(failure) = run_seed(seed) {
                panic!(
                    "seed {seed} failed: {failure}\n{}",
                    repro_json(&generate_case(seed))
                );
            }
        }
    }
}
