//! Obviously-correct row-at-a-time reference interpreter — the oracle of the
//! differential harness.
//!
//! The interpreter evaluates the IR directly over the catalog's in-memory row
//! vectors: no planner, no compression, no morsels, no push-down, no hash
//! tables beyond a plain `HashMap`. Value-level primitives are deliberately
//! *shared* with the engine (`exec::arith`, `Value::sql_cmp`,
//! `CmpOp::eval_ordering`, `Value::total_cmp`) so the two sides agree on SQL
//! scalar semantics by construction and the differential isolates plan-level
//! behaviour: push-down, morsel scheduling, compression, spilling, join and
//! aggregation strategy.
//!
//! Ordering contracts mirrored here (the engine guarantees them at every
//! thread count):
//! * scans produce rows in insertion order;
//! * aggregates emit groups sorted by `total_cmp` over the key values;
//! * inner joins emit, per probe row (in probe order), the matching build rows
//!   in build insertion order;
//! * sort is stable.
//!
//! Errors are returned, never panicked, so the shrinker can probe arbitrarily
//! mangled candidate cases safely.

use std::collections::HashMap;

use datablocks::scan::CmpOpOrderingExt;
use datablocks::{DataType, Value};
use exec::ops::{AggFunc, JoinType};
use exec::{arith, ArithOp};

use crate::ir::{AggItem, ExprKind, IrExpr, Node, PredicateKind, QueryIr, TypedExpr};

use super::Catalog;

/// A materialised intermediate result: column types plus row-major values.
pub(super) struct Table {
    /// Output column types (declared types, as the planner would infer them).
    pub types: Vec<DataType>,
    /// Rows in output order.
    pub rows: Vec<Vec<Value>>,
}

/// Interpret `ir` over `catalog` row by row.
pub(super) fn execute(catalog: &Catalog, ir: &QueryIr) -> Result<Table, String> {
    eval_node(catalog, &ir.root)
}

fn eval_node(catalog: &Catalog, node: &Node) -> Result<Table, String> {
    match node {
        Node::Scan {
            relation,
            columns,
            predicates,
            ..
        } => eval_scan(catalog, relation, columns, predicates),
        Node::Filter {
            input, predicate, ..
        } => {
            let input = eval_node(catalog, input)?;
            let mut rows = Vec::new();
            for row in input.rows {
                if truthy(&eval_expr(predicate, &row)?) == Some(true) {
                    rows.push(row);
                }
            }
            Ok(Table {
                types: input.types,
                rows,
            })
        }
        Node::Project { input, exprs, .. } => {
            let input = eval_node(catalog, input)?;
            let mut rows = Vec::with_capacity(input.rows.len());
            for row in &input.rows {
                let mut out = Vec::with_capacity(exprs.len());
                for te in exprs {
                    out.push(eval_expr(&te.expr, row)?);
                }
                rows.push(out);
            }
            Ok(Table {
                types: exprs.iter().map(|te| te.ty).collect(),
                rows,
            })
        }
        Node::Aggregate {
            input,
            groups,
            aggregates,
            ..
        } => {
            let input = eval_node(catalog, input)?;
            eval_aggregate(&input, groups, aggregates)
        }
        Node::Join {
            join_type,
            build,
            probe,
            build_keys,
            probe_keys,
            ..
        } => {
            let build = eval_node(catalog, build)?;
            let probe = eval_node(catalog, probe)?;
            eval_join(&build, &probe, *join_type, build_keys, probe_keys)
        }
        Node::Sort {
            input, keys, limit, ..
        } => {
            let mut input = eval_node(catalog, input)?;
            for key in keys {
                if key.column >= input.types.len() {
                    return Err(format!("sort key column {} out of range", key.column));
                }
            }
            // Stable sort on the full key vector: most significant key first,
            // total order over every value (the engine's SortOp contract).
            input.rows.sort_by(|a, b| {
                for key in keys {
                    let ord = a[key.column].total_cmp(&b[key.column]);
                    let ord = if key.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            if let Some(limit) = limit {
                input.rows.truncate(*limit);
            }
            Ok(input)
        }
    }
}

fn eval_scan(
    catalog: &Catalog,
    relation: &str,
    columns: &[String],
    predicates: &[crate::ir::ScanPredicate],
) -> Result<Table, String> {
    let rel = catalog
        .relations
        .iter()
        .find(|r| r.name == relation)
        .ok_or_else(|| format!("unknown relation {relation:?}"))?;
    let col_index = |name: &str| -> Result<usize, String> {
        rel.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| format!("unknown column {name:?} of relation {relation:?}"))
    };
    let projection: Vec<usize> = columns
        .iter()
        .map(|name| col_index(name))
        .collect::<Result<_, _>>()?;
    let restricted: Vec<(usize, &PredicateKind)> = predicates
        .iter()
        .map(|p| Ok((col_index(&p.column)?, &p.kind)))
        .collect::<Result<_, String>>()?;

    let mut rows = Vec::new();
    for row in &rel.rows {
        let keep = restricted
            .iter()
            .all(|(col, kind)| predicate_matches(kind, &row[*col]));
        if keep {
            rows.push(projection.iter().map(|&c| row[c].clone()).collect());
        }
    }
    Ok(Table {
        types: projection.iter().map(|&c| rel.columns[c].ty).collect(),
        rows,
    })
}

/// Mirror of `Restriction::matches_value`: NULL never satisfies a comparison
/// or range (`sql_cmp` returns `None`), only the explicit IS [NOT] NULL forms
/// look at NULL-ness.
fn predicate_matches(kind: &PredicateKind, value: &Value) -> bool {
    match kind {
        PredicateKind::Cmp(op, constant) => match value.sql_cmp(constant) {
            Some(ord) => op.eval_ordering(ord),
            None => false,
        },
        PredicateKind::Between(lo, hi) => {
            let ge = value.sql_cmp(lo).map(|o| o != std::cmp::Ordering::Less);
            let le = value.sql_cmp(hi).map(|o| o != std::cmp::Ordering::Greater);
            matches!((ge, le), (Some(true), Some(true)))
        }
        PredicateKind::IsNull => value.is_null(),
        PredicateKind::IsNotNull => !value.is_null(),
    }
}

/// SQL-ish truthiness: NULL is unknown, zero and the empty string are false.
fn truthy(value: &Value) -> Option<bool> {
    match value {
        Value::Null => None,
        Value::Int(v) => Some(*v != 0),
        Value::Double(v) => Some(*v != 0.0),
        Value::Str(s) => Some(!s.is_empty()),
    }
}

fn eval_expr(expr: &IrExpr, row: &[Value]) -> Result<Value, String> {
    Ok(match &expr.kind {
        ExprKind::Col(idx) => row
            .get(*idx)
            .cloned()
            .ok_or_else(|| format!("column {idx} out of range"))?,
        ExprKind::Lit(v) => v.clone(),
        ExprKind::Arith(op, l, r) => arith(*op, &eval_expr(l, row)?, &eval_expr(r, row)?),
        ExprKind::Cmp(op, l, r) => match eval_expr(l, row)?.sql_cmp(&eval_expr(r, row)?) {
            Some(ord) => Value::Int(op.eval_ordering(ord) as i64),
            None => Value::Null,
        },
        ExprKind::And(l, r) => match (truthy(&eval_expr(l, row)?), truthy(&eval_expr(r, row)?)) {
            (Some(false), _) | (_, Some(false)) => Value::Int(0),
            (Some(true), Some(true)) => Value::Int(1),
            _ => Value::Null,
        },
        ExprKind::Or(l, r) => match (truthy(&eval_expr(l, row)?), truthy(&eval_expr(r, row)?)) {
            (Some(true), _) | (_, Some(true)) => Value::Int(1),
            (Some(false), Some(false)) => Value::Int(0),
            _ => Value::Null,
        },
        ExprKind::Case(cond, then, otherwise) => {
            if truthy(&eval_expr(cond, row)?).unwrap_or(false) {
                eval_expr(then, row)?
            } else {
                eval_expr(otherwise, row)?
            }
        }
    })
}

/// Hashable value identity for group/join keys. Doubles key by bit pattern —
/// exactly like the engine's `GroupKey` hash — which is sound here because the
/// generator keeps `-0.0`-capable expressions (and NaN, unrepresentable in the
/// IR) out of key position.
#[derive(PartialEq, Eq, Hash)]
enum BitValue {
    Null,
    Int(i64),
    Double(u64),
    Str(String),
}

fn bit_key(values: &[Value]) -> Vec<BitValue> {
    values
        .iter()
        .map(|v| match v {
            Value::Null => BitValue::Null,
            Value::Int(v) => BitValue::Int(*v),
            Value::Double(v) => BitValue::Double(v.to_bits()),
            Value::Str(s) => BitValue::Str(s.clone()),
        })
        .collect()
}

/// One in-flight aggregate: a faithful mirror of the engine's `AggState`
/// (NULLs are skipped entirely, `count(*)` counts every row, sums start from
/// the first value, min/max select via `sql_cmp`).
struct RefAgg {
    count: i64,
    sum: Value,
    min: Value,
    max: Value,
}

impl RefAgg {
    fn new() -> RefAgg {
        RefAgg {
            count: 0,
            sum: Value::Null,
            min: Value::Null,
            max: Value::Null,
        }
    }

    fn update(&mut self, value: &Value, count_star: bool) {
        if count_star {
            self.count += 1;
            return;
        }
        if value.is_null() {
            return;
        }
        self.count += 1;
        self.sum = if self.sum.is_null() {
            value.clone()
        } else {
            arith(ArithOp::Add, &self.sum, value)
        };
        if self.min.is_null() || matches!(value.sql_cmp(&self.min), Some(std::cmp::Ordering::Less))
        {
            self.min = value.clone();
        }
        if self.max.is_null()
            || matches!(value.sql_cmp(&self.max), Some(std::cmp::Ordering::Greater))
        {
            self.max = value.clone();
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Sum => self.sum.clone(),
            AggFunc::Count | AggFunc::CountStar => Value::Int(self.count),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    arith(ArithOp::Div, &self.sum, &Value::Int(self.count))
                }
            }
            AggFunc::Min => self.min.clone(),
            AggFunc::Max => self.max.clone(),
        }
    }
}

fn eval_aggregate(
    input: &Table,
    groups: &[TypedExpr],
    aggregates: &[AggItem],
) -> Result<Table, String> {
    // Entries keyed by value identity; rows processed in input order so the
    // serial engine's left-to-right accumulation is reproduced exactly.
    // An empty input yields an empty output even with no group keys — the
    // engine's hash table has no entries to emit (SQL would say one row; this
    // pins the engine's actual contract).
    let mut index: HashMap<Vec<BitValue>, usize> = HashMap::new();
    let mut entries: Vec<(Vec<Value>, Vec<RefAgg>)> = Vec::new();
    for row in &input.rows {
        let mut keys = Vec::with_capacity(groups.len());
        for g in groups {
            keys.push(eval_expr(&g.expr, row)?);
        }
        let entry = match index.get(&bit_key(&keys)) {
            Some(&i) => i,
            None => {
                index.insert(bit_key(&keys), entries.len());
                entries.push((keys, aggregates.iter().map(|_| RefAgg::new()).collect()));
                entries.len() - 1
            }
        };
        let states = &mut entries[entry].1;
        for (state, item) in states.iter_mut().zip(aggregates) {
            match &item.expr {
                None => state.update(&Value::Null, true),
                Some(expr) => state.update(&eval_expr(expr, row)?, false),
            }
        }
    }

    // Groups are emitted sorted by total order over the key values.
    entries.sort_by(|a, b| {
        a.0.iter()
            .zip(&b.0)
            .map(|(x, y)| x.total_cmp(y))
            .find(|ord| *ord != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut rows = Vec::with_capacity(entries.len());
    for (keys, states) in entries {
        let mut row = keys;
        for (state, item) in states.iter().zip(aggregates) {
            row.push(state.finish(item.func));
        }
        rows.push(row);
    }
    let mut types: Vec<DataType> = groups.iter().map(|g| g.ty).collect();
    types.extend(aggregates.iter().map(|a| a.ty));
    Ok(Table { types, rows })
}

fn eval_join(
    build: &Table,
    probe: &Table,
    join_type: JoinType,
    build_keys: &[usize],
    probe_keys: &[usize],
) -> Result<Table, String> {
    if build_keys.is_empty() || build_keys.len() != probe_keys.len() {
        return Err("join key arity mismatch".into());
    }
    for &k in build_keys {
        if k >= build.types.len() {
            return Err(format!("build key {k} out of range"));
        }
    }
    for &k in probe_keys {
        if k >= probe.types.len() {
            return Err(format!("probe key {k} out of range"));
        }
    }

    // Hash table over the build side, match lists in build insertion order —
    // the order the engine restores even after a parallel build.
    let mut table: HashMap<Vec<BitValue>, Vec<usize>> = HashMap::new();
    for (i, row) in build.rows.iter().enumerate() {
        let keys: Vec<Value> = build_keys.iter().map(|&k| row[k].clone()).collect();
        table.entry(bit_key(&keys)).or_default().push(i);
    }

    let mut rows = Vec::new();
    for probe_row in &probe.rows {
        let keys: Vec<Value> = probe_keys.iter().map(|&k| probe_row[k].clone()).collect();
        // NULL keys never join.
        if keys.iter().any(Value::is_null) {
            continue;
        }
        let matches = match table.get(&bit_key(&keys)) {
            Some(m) => m,
            None => continue,
        };
        match join_type {
            JoinType::Inner => {
                for &b in matches {
                    let mut out = build.rows[b].clone();
                    out.extend(probe_row.iter().cloned());
                    rows.push(out);
                }
            }
            JoinType::ProbeSemi => rows.push(probe_row.clone()),
        }
    }

    let types = match join_type {
        JoinType::Inner => build.types.iter().chain(&probe.types).copied().collect(),
        JoinType::ProbeSemi => probe.types.clone(),
    };
    Ok(Table { types, rows })
}
