//! Greedy shrinking of failing fuzz cases.
//!
//! The shrinker repeatedly proposes strictly-smaller candidate cases (by the
//! [`case_size`] metric) and keeps any candidate on which the caller's
//! predicate still fails, restarting until no candidate helps or the
//! evaluation budget runs out. Candidates that are no longer well-typed are
//! rejected naturally: the planner (or the reference interpreter) refuses
//! them, the failure kind changes, and the predicate returns false.
//!
//! Proposed candidates, roughly largest-win first:
//! * replace any node by one of its children (dropping a whole operator);
//! * drop a scan predicate / projected column / project expression / group
//!   key / aggregate / join key pair / sort key / sort limit;
//! * replace an expression by one of its subexpressions or by `null` (for
//!   typed positions, with each possible declared type);
//! * drop a relation; empty a relation; halve its rows; drop single rows.

use datablocks::{DataType, Value};

use crate::ir::{AggItem, ExprKind, IrExpr, Node, QueryIr, TypedExpr};

use super::{Catalog, FuzzCase, RelationData};

/// Maximum number of predicate evaluations one [`shrink_case`] call may spend.
const EVAL_BUDGET: usize = 800;

/// Size metric driving the greedy descent: operators dominate, then
/// expression/predicate complexity, then data volume.
pub fn case_size(case: &FuzzCase) -> u64 {
    fn expr_size(expr: &IrExpr) -> u64 {
        1 + match &expr.kind {
            ExprKind::Col(_) | ExprKind::Lit(_) => 0,
            ExprKind::Arith(_, l, r) | ExprKind::Cmp(_, l, r) => expr_size(l) + expr_size(r),
            ExprKind::And(l, r) | ExprKind::Or(l, r) => expr_size(l) + expr_size(r),
            ExprKind::Case(c, t, e) => expr_size(c) + expr_size(t) + expr_size(e),
        }
    }
    fn node_size(node: &Node) -> u64 {
        match node {
            Node::Scan {
                columns,
                predicates,
                ..
            } => 10_000 + columns.len() as u64 * 100 + predicates.len() as u64 * 100,
            Node::Filter {
                input, predicate, ..
            } => 10_000 + expr_size(predicate) * 100 + node_size(input),
            Node::Project { input, exprs, .. } => {
                10_000
                    + exprs.iter().map(|e| expr_size(&e.expr)).sum::<u64>() * 100
                    + node_size(input)
            }
            Node::Aggregate {
                input,
                groups,
                aggregates,
                ..
            } => {
                10_000
                    + groups.iter().map(|g| expr_size(&g.expr)).sum::<u64>() * 100
                    + aggregates
                        .iter()
                        .map(|a| a.expr.as_ref().map_or(1, expr_size))
                        .sum::<u64>()
                        * 100
                    + node_size(input)
            }
            Node::Join {
                build,
                probe,
                build_keys,
                ..
            } => 10_000 + build_keys.len() as u64 * 100 + node_size(build) + node_size(probe),
            Node::Sort { input, keys, .. } => 10_000 + keys.len() as u64 * 100 + node_size(input),
        }
    }
    let data: u64 = case
        .catalog
        .relations
        .iter()
        .map(|r| 50 + r.rows.len() as u64)
        .sum();
    node_size(&case.ir.root) + data
}

/// Greedily shrink `case` while `fails` keeps returning true, and return the
/// smallest failing case found (possibly `case` itself).
pub fn shrink_case(case: &FuzzCase, fails: &dyn Fn(&FuzzCase) -> bool) -> FuzzCase {
    let mut best = case.clone();
    let mut best_size = case_size(&best);
    let mut evals = 0usize;
    'descend: loop {
        for candidate in candidates(&best) {
            if evals >= EVAL_BUDGET {
                return best;
            }
            let size = case_size(&candidate);
            if size >= best_size {
                continue;
            }
            evals += 1;
            if fails(&candidate) {
                best = candidate;
                best_size = size;
                continue 'descend;
            }
        }
        return best;
    }
}

fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    for root in node_variants(&case.ir.root) {
        out.push(FuzzCase {
            seed: case.seed,
            catalog: case.catalog.clone(),
            ir: QueryIr {
                version: case.ir.version,
                root,
            },
        });
    }
    for catalog in catalog_variants(&case.catalog) {
        out.push(FuzzCase {
            seed: case.seed,
            catalog,
            ir: case.ir.clone(),
        });
    }
    out
}

// ---------------------------------------------------------------- IR shrinks

fn node_variants(node: &Node) -> Vec<Node> {
    let mut out = Vec::new();
    match node {
        Node::Scan {
            pos,
            relation,
            columns,
            predicates,
        } => {
            for i in 0..predicates.len() {
                let mut p = predicates.clone();
                p.remove(i);
                out.push(Node::Scan {
                    pos: *pos,
                    relation: relation.clone(),
                    columns: columns.clone(),
                    predicates: p,
                });
            }
            if columns.len() > 1 {
                for i in 0..columns.len() {
                    let mut c = columns.clone();
                    c.remove(i);
                    out.push(Node::Scan {
                        pos: *pos,
                        relation: relation.clone(),
                        columns: c,
                        predicates: predicates.clone(),
                    });
                }
            }
        }
        Node::Filter {
            pos,
            input,
            predicate,
        } => {
            out.push((**input).clone());
            for p in expr_variants(predicate) {
                out.push(Node::Filter {
                    pos: *pos,
                    input: input.clone(),
                    predicate: p,
                });
            }
            for i in node_variants(input) {
                out.push(Node::Filter {
                    pos: *pos,
                    input: Box::new(i),
                    predicate: predicate.clone(),
                });
            }
        }
        Node::Project { pos, input, exprs } => {
            out.push((**input).clone());
            if exprs.len() > 1 {
                for i in 0..exprs.len() {
                    let mut e = exprs.clone();
                    e.remove(i);
                    out.push(Node::Project {
                        pos: *pos,
                        input: input.clone(),
                        exprs: e,
                    });
                }
            }
            for i in 0..exprs.len() {
                for te in typed_expr_variants(&exprs[i]) {
                    let mut e = exprs.clone();
                    e[i] = te;
                    out.push(Node::Project {
                        pos: *pos,
                        input: input.clone(),
                        exprs: e,
                    });
                }
            }
            for i in node_variants(input) {
                out.push(Node::Project {
                    pos: *pos,
                    input: Box::new(i),
                    exprs: exprs.clone(),
                });
            }
        }
        Node::Aggregate {
            pos,
            input,
            groups,
            aggregates,
        } => {
            out.push((**input).clone());
            let rebuild = |groups: Vec<TypedExpr>, aggregates: Vec<AggItem>| Node::Aggregate {
                pos: *pos,
                input: input.clone(),
                groups,
                aggregates,
            };
            if groups.len() + aggregates.len() > 1 {
                for i in 0..groups.len() {
                    let mut g = groups.clone();
                    g.remove(i);
                    out.push(rebuild(g, aggregates.clone()));
                }
                for i in 0..aggregates.len() {
                    let mut a = aggregates.clone();
                    a.remove(i);
                    out.push(rebuild(groups.clone(), a));
                }
            }
            for i in 0..groups.len() {
                for te in typed_expr_variants(&groups[i]) {
                    let mut g = groups.clone();
                    g[i] = te;
                    out.push(rebuild(g, aggregates.clone()));
                }
            }
            for i in 0..aggregates.len() {
                if let Some(expr) = &aggregates[i].expr {
                    for e in expr_variants(expr) {
                        let mut a = aggregates.clone();
                        a[i].expr = Some(e);
                        out.push(rebuild(groups.clone(), a));
                    }
                }
            }
            for i in node_variants(input) {
                out.push(Node::Aggregate {
                    pos: *pos,
                    input: Box::new(i),
                    groups: groups.clone(),
                    aggregates: aggregates.clone(),
                });
            }
        }
        Node::Join {
            pos,
            join_type,
            build,
            probe,
            build_keys,
            probe_keys,
            early_probe,
        } => {
            out.push((**build).clone());
            out.push((**probe).clone());
            let rebuild = |build: Box<Node>,
                           probe: Box<Node>,
                           build_keys: Vec<usize>,
                           probe_keys: Vec<usize>,
                           early_probe: bool| Node::Join {
                pos: *pos,
                join_type: *join_type,
                build,
                probe,
                build_keys,
                probe_keys,
                early_probe,
            };
            if build_keys.len() > 1 {
                for i in 0..build_keys.len() {
                    let mut bk = build_keys.clone();
                    let mut pk = probe_keys.clone();
                    bk.remove(i);
                    pk.remove(i);
                    out.push(rebuild(build.clone(), probe.clone(), bk, pk, *early_probe));
                }
            }
            if *early_probe {
                out.push(rebuild(
                    build.clone(),
                    probe.clone(),
                    build_keys.clone(),
                    probe_keys.clone(),
                    false,
                ));
            }
            for b in node_variants(build) {
                out.push(rebuild(
                    Box::new(b),
                    probe.clone(),
                    build_keys.clone(),
                    probe_keys.clone(),
                    *early_probe,
                ));
            }
            for p in node_variants(probe) {
                out.push(rebuild(
                    build.clone(),
                    Box::new(p),
                    build_keys.clone(),
                    probe_keys.clone(),
                    *early_probe,
                ));
            }
        }
        Node::Sort {
            pos,
            input,
            keys,
            limit,
        } => {
            out.push((**input).clone());
            if keys.len() > 1 {
                for i in 0..keys.len() {
                    let mut k = keys.clone();
                    k.remove(i);
                    out.push(Node::Sort {
                        pos: *pos,
                        input: input.clone(),
                        keys: k,
                        limit: *limit,
                    });
                }
            }
            if limit.is_some() {
                out.push(Node::Sort {
                    pos: *pos,
                    input: input.clone(),
                    keys: keys.clone(),
                    limit: None,
                });
            }
            for i in node_variants(input) {
                out.push(Node::Sort {
                    pos: *pos,
                    input: Box::new(i),
                    keys: keys.clone(),
                    limit: *limit,
                });
            }
        }
    }
    out
}

/// Variants of a typed (projection / group) expression: every subexpression
/// replacement, offered under the original declared type and under each
/// alternative (a hoisted subexpression usually infers a different type).
fn typed_expr_variants(te: &TypedExpr) -> Vec<TypedExpr> {
    let mut out = Vec::new();
    for expr in expr_variants(&te.expr) {
        for ty in [te.ty, DataType::Int, DataType::Double, DataType::Str] {
            let candidate = TypedExpr {
                expr: expr.clone(),
                ty,
            };
            if !out.contains(&candidate) {
                out.push(candidate);
            }
        }
    }
    out
}

/// Variants of an expression: each direct subexpression hoisted into its
/// place, a plain `null` literal, and (recursively) each child shrunk in
/// place.
fn expr_variants(expr: &IrExpr) -> Vec<IrExpr> {
    let mut out = Vec::new();
    let children: Vec<&IrExpr> = match &expr.kind {
        ExprKind::Col(_) | ExprKind::Lit(_) => Vec::new(),
        ExprKind::Arith(_, l, r) | ExprKind::Cmp(_, l, r) => vec![l, r],
        ExprKind::And(l, r) | ExprKind::Or(l, r) => vec![l, r],
        ExprKind::Case(c, t, e) => vec![c, t, e],
    };
    for child in &children {
        out.push((**child).clone());
    }
    if !matches!(expr.kind, ExprKind::Lit(Value::Null)) {
        out.push(IrExpr {
            pos: expr.pos,
            kind: ExprKind::Lit(Value::Null),
        });
    }
    for (i, child) in children.iter().enumerate() {
        for variant in expr_variants(child) {
            out.push(replace_child(expr, i, variant));
        }
    }
    out
}

fn replace_child(expr: &IrExpr, index: usize, new_child: IrExpr) -> IrExpr {
    let boxed = Box::new(new_child);
    let kind = match (&expr.kind, index) {
        (ExprKind::Arith(op, _, r), 0) => ExprKind::Arith(*op, boxed, r.clone()),
        (ExprKind::Arith(op, l, _), 1) => ExprKind::Arith(*op, l.clone(), boxed),
        (ExprKind::Cmp(op, _, r), 0) => ExprKind::Cmp(*op, boxed, r.clone()),
        (ExprKind::Cmp(op, l, _), 1) => ExprKind::Cmp(*op, l.clone(), boxed),
        (ExprKind::And(_, r), 0) => ExprKind::And(boxed, r.clone()),
        (ExprKind::And(l, _), 1) => ExprKind::And(l.clone(), boxed),
        (ExprKind::Or(_, r), 0) => ExprKind::Or(boxed, r.clone()),
        (ExprKind::Or(l, _), 1) => ExprKind::Or(l.clone(), boxed),
        (ExprKind::Case(_, t, e), 0) => ExprKind::Case(boxed, t.clone(), e.clone()),
        (ExprKind::Case(c, _, e), 1) => ExprKind::Case(c.clone(), boxed, e.clone()),
        (ExprKind::Case(c, t, _), 2) => ExprKind::Case(c.clone(), t.clone(), boxed),
        _ => unreachable!("replace_child index out of range"),
    };
    IrExpr {
        pos: expr.pos,
        kind,
    }
}

// -------------------------------------------------------------- data shrinks

fn catalog_variants(catalog: &Catalog) -> Vec<Catalog> {
    let mut out = Vec::new();
    if catalog.relations.len() > 1 {
        for i in 0..catalog.relations.len() {
            let mut relations = catalog.relations.clone();
            relations.remove(i);
            out.push(Catalog { relations });
        }
    }
    for (i, rel) in catalog.relations.iter().enumerate() {
        for rows in row_variants(rel) {
            let mut relations = catalog.relations.clone();
            relations[i] = RelationData {
                rows,
                ..rel.clone()
            };
            out.push(Catalog { relations });
        }
    }
    out
}

fn row_variants(rel: &RelationData) -> Vec<Vec<Vec<Value>>> {
    let mut out = Vec::new();
    let n = rel.rows.len();
    if n == 0 {
        return out;
    }
    out.push(Vec::new());
    if n > 1 {
        out.push(rel.rows[..n / 2].to_vec());
        out.push(rel.rows[n / 2..].to_vec());
    }
    if n <= 24 {
        for i in 0..n {
            let mut rows = rel.rows.clone();
            rows.remove(i);
            out.push(rows);
        }
    }
    out
}
