//! # rand (offline stand-in)
//!
//! The build environment has no access to crates.io, so this crate provides the
//! *minimal* `rand`-compatible API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over (inclusive and half-open)
//! integer and float ranges, and [`Rng::gen_bool`].
//!
//! The generator is splitmix64 — statistically fine for synthetic data generation and
//! fully deterministic, which is all the workload generators need. The streams do
//! **not** match the real `rand` crate's `StdRng` (ChaCha12); every consumer in this
//! repository only relies on run-to-run determinism, never on a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

/// A range that can be sampled uniformly (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types [`Rng::gen_range`] can sample. The blanket [`SampleRange`] impls over
/// this trait tie the range's element type to the call's result type, which is what
/// lets unsuffixed integer literals infer correctly (mirrors `rand::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Map 64 random bits to a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + inclusive as i128) as u128;
                assert!(span > 0, "cannot sample empty range");
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "cannot sample empty range"
        );
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64). Stands in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood; public domain reference implementation)
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn ranges_cover_their_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!StdRng::seed_from_u64(3).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(3).gen_bool(1.0));
    }
}
