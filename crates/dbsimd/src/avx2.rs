//! AVX2 (256-bit) predicate-evaluation kernels.
//!
//! These follow the algorithms of Section 4.2 and Appendix C of the paper:
//!
//! * *find initial matches*: compare 32/16/8/4 code words per iteration, convert the
//!   comparison result to a bit-mask with `movemask`, and turn each 8-bit (or 4-bit)
//!   slice of the mask into match positions with a single lookup in the pre-computed
//!   positions table. The full 8-lane position vector is stored unconditionally and
//!   the write cursor advances by the number of matches, so the kernel is insensitive
//!   to selectivity.
//! * *reduce matches*: gather the attribute values at the existing match positions
//!   (`vpgatherdd` / `vpgatherdq`), evaluate the additional predicate, and compact the
//!   match vector using the table entry as a shuffle control mask
//!   (`vpermd`), exactly as sketched in Figure 7(b).
//!
//! All comparisons are on *unsigned* code words. AVX2 only provides signed compares
//! for 64-bit lanes, so those are biased by `1 << 63` first; the narrower widths use
//! the `min/max + compare-equal` idiom which is unsigned by construction.
//!
//! # Safety
//!
//! Every function in this module is `unsafe` because it requires the `avx2` target
//! feature. Callers go through [`crate::find_matches`] / [`crate::reduce_matches`],
//! which verify CPU support at runtime before dispatching here.

#![allow(clippy::missing_safety_doc)] // module-level safety contract documented above

use crate::postable::{COUNTS_4, COUNTS_8, POSITIONS_4_I32, POSITIONS_8_I32};
use crate::predicate::RangePredicate;
use crate::scalar;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Ensure `out` has room for `extra` more positions plus `slack` over-store lanes,
/// returning the current logical length (the append start).
#[inline]
fn prepare_out(out: &mut Vec<u32>, extra: usize, slack: usize) -> usize {
    let start = out.len();
    out.reserve(extra + slack);
    start
}

// ---------------------------------------------------------------------------------
// find matches: u8
// ---------------------------------------------------------------------------------

/// AVX2 find-matches kernel for 1-byte code words (32 lanes per iteration).
#[target_feature(enable = "avx2")]
pub unsafe fn find_matches_u8(
    data: &[u8],
    pred: &RangePredicate<u8>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        return 0;
    }
    let start = prepare_out(out, data.len(), 8);
    let ptr = out.as_mut_ptr().add(start);
    let mut w = 0usize;

    let lo = _mm256_set1_epi8(pred.lo as i8);
    let hi = _mm256_set1_epi8(pred.hi as i8);
    let n = data.len();
    let simd_iters = n / 32;

    for i in 0..simd_iters {
        let scan_pos = (i * 32) as u32;
        let v = _mm256_loadu_si256(data.as_ptr().add(i * 32) as *const __m256i);
        // x >= lo  <=>  max_unsigned(x, lo) == x ;  x <= hi  <=>  min_unsigned(x, hi) == x
        let ge_lo = _mm256_cmpeq_epi8(_mm256_max_epu8(v, lo), v);
        let le_hi = _mm256_cmpeq_epi8(_mm256_min_epu8(v, hi), v);
        let mask = _mm256_movemask_epi8(_mm256_and_si256(ge_lo, le_hi)) as u32;

        // Process the 32-bit movemask one byte at a time through the positions table.
        let mut sub = 0u32;
        let mut m = mask;
        while sub < 32 {
            let byte = (m & 0xFF) as usize;
            let entry = _mm256_loadu_si256(POSITIONS_8_I32[byte].as_ptr() as *const __m256i);
            let positions =
                _mm256_add_epi32(entry, _mm256_set1_epi32((base + scan_pos + sub) as i32));
            _mm256_storeu_si256(ptr.add(w) as *mut __m256i, positions);
            w += COUNTS_8[byte] as usize;
            m >>= 8;
            sub += 8;
        }
    }
    out.set_len(start + w);

    // Tail: remaining (< 32) elements scalar.
    let tail_start = simd_iters * 32;
    let tail =
        scalar::find_matches_scalar(&data[tail_start..], pred, base + tail_start as u32, out);
    w + tail
}

// ---------------------------------------------------------------------------------
// find matches: u16
// ---------------------------------------------------------------------------------

/// AVX2 find-matches kernel for 2-byte code words (16 lanes per iteration).
#[target_feature(enable = "avx2")]
pub unsafe fn find_matches_u16(
    data: &[u16],
    pred: &RangePredicate<u16>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        return 0;
    }
    let start = prepare_out(out, data.len(), 8);
    let ptr = out.as_mut_ptr().add(start);
    let mut w = 0usize;

    let lo = _mm256_set1_epi16(pred.lo as i16);
    let hi = _mm256_set1_epi16(pred.hi as i16);
    let zero = _mm256_setzero_si256();
    let n = data.len();
    let simd_iters = n / 16;

    for i in 0..simd_iters {
        let scan_pos = (i * 16) as u32;
        let v = _mm256_loadu_si256(data.as_ptr().add(i * 16) as *const __m256i);
        let ge_lo = _mm256_cmpeq_epi16(_mm256_max_epu16(v, lo), v);
        let le_hi = _mm256_cmpeq_epi16(_mm256_min_epu16(v, hi), v);
        let m16 = _mm256_and_si256(ge_lo, le_hi);
        // Compact the 16-bit lane mask to one bit per lane: saturating pack (0xFFFF →
        // 0xFF, 0 → 0) then movemask. packs works per 128-bit lane, so the low byte of
        // the movemask covers lanes 0..8 and bits 16..24 cover lanes 8..16.
        let packed = _mm256_packs_epi16(m16, zero);
        let mm = _mm256_movemask_epi8(packed) as u32;
        let mask16 = (mm & 0xFF) | ((mm >> 16) & 0xFF) << 8;

        let mut sub = 0u32;
        let mut m = mask16;
        while sub < 16 {
            let byte = (m & 0xFF) as usize;
            let entry = _mm256_loadu_si256(POSITIONS_8_I32[byte].as_ptr() as *const __m256i);
            let positions =
                _mm256_add_epi32(entry, _mm256_set1_epi32((base + scan_pos + sub) as i32));
            _mm256_storeu_si256(ptr.add(w) as *mut __m256i, positions);
            w += COUNTS_8[byte] as usize;
            m >>= 8;
            sub += 8;
        }
    }
    out.set_len(start + w);

    let tail_start = simd_iters * 16;
    let tail =
        scalar::find_matches_scalar(&data[tail_start..], pred, base + tail_start as u32, out);
    w + tail
}

// ---------------------------------------------------------------------------------
// find matches: u32
// ---------------------------------------------------------------------------------

/// AVX2 find-matches kernel for 4-byte code words (8 lanes per iteration).
#[target_feature(enable = "avx2")]
pub unsafe fn find_matches_u32(
    data: &[u32],
    pred: &RangePredicate<u32>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        return 0;
    }
    let start = prepare_out(out, data.len(), 8);
    let ptr = out.as_mut_ptr().add(start);
    let mut w = 0usize;

    let lo = _mm256_set1_epi32(pred.lo as i32);
    let hi = _mm256_set1_epi32(pred.hi as i32);
    let n = data.len();
    let simd_iters = n / 8;

    for i in 0..simd_iters {
        let scan_pos = (i * 8) as u32;
        let v = _mm256_loadu_si256(data.as_ptr().add(i * 8) as *const __m256i);
        let ge_lo = _mm256_cmpeq_epi32(_mm256_max_epu32(v, lo), v);
        let le_hi = _mm256_cmpeq_epi32(_mm256_min_epu32(v, hi), v);
        let mask = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_and_si256(ge_lo, le_hi))) as usize;

        let entry = _mm256_loadu_si256(POSITIONS_8_I32[mask].as_ptr() as *const __m256i);
        let positions = _mm256_add_epi32(entry, _mm256_set1_epi32((base + scan_pos) as i32));
        _mm256_storeu_si256(ptr.add(w) as *mut __m256i, positions);
        w += COUNTS_8[mask] as usize;
    }
    out.set_len(start + w);

    let tail_start = simd_iters * 8;
    let tail =
        scalar::find_matches_scalar(&data[tail_start..], pred, base + tail_start as u32, out);
    w + tail
}

// ---------------------------------------------------------------------------------
// find matches: u64
// ---------------------------------------------------------------------------------

/// AVX2 find-matches kernel for 8-byte code words (4 lanes per iteration).
#[target_feature(enable = "avx2")]
pub unsafe fn find_matches_u64(
    data: &[u64],
    pred: &RangePredicate<u64>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        return 0;
    }
    let start = prepare_out(out, data.len(), 4);
    let ptr = out.as_mut_ptr().add(start);
    let mut w = 0usize;

    // AVX2 only has signed 64-bit compares: bias by 1 << 63 to compare unsigned.
    let bias = _mm256_set1_epi64x(i64::MIN);
    let lo = _mm256_xor_si256(_mm256_set1_epi64x(pred.lo as i64), bias);
    let hi = _mm256_xor_si256(_mm256_set1_epi64x(pred.hi as i64), bias);
    let n = data.len();
    let simd_iters = n / 4;

    for i in 0..simd_iters {
        let scan_pos = (i * 4) as u32;
        let raw = _mm256_loadu_si256(data.as_ptr().add(i * 4) as *const __m256i);
        let v = _mm256_xor_si256(raw, bias);
        // in-range = !(lo > v) && !(v > hi)
        let lt_lo = _mm256_cmpgt_epi64(lo, v);
        let gt_hi = _mm256_cmpgt_epi64(v, hi);
        let out_of_range = _mm256_or_si256(lt_lo, gt_hi);
        let mask = (!(_mm256_movemask_pd(_mm256_castsi256_pd(out_of_range)) as usize)) & 0b1111;

        let entry = _mm_loadu_si128(POSITIONS_4_I32[mask].as_ptr() as *const __m128i);
        let positions = _mm_add_epi32(entry, _mm_set1_epi32((base + scan_pos) as i32));
        _mm_storeu_si128(ptr.add(w) as *mut __m128i, positions);
        w += COUNTS_4[mask] as usize;
    }
    out.set_len(start + w);

    let tail_start = simd_iters * 4;
    let tail =
        scalar::find_matches_scalar(&data[tail_start..], pred, base + tail_start as u32, out);
    w + tail
}

// ---------------------------------------------------------------------------------
// reduce matches: u32 (gather + permute compaction, Figure 7(b))
// ---------------------------------------------------------------------------------

/// AVX2 reduce-matches kernel for 4-byte code words.
#[target_feature(enable = "avx2")]
pub unsafe fn reduce_matches_u32(
    data: &[u32],
    pred: &RangePredicate<u32>,
    base: u32,
    matches: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        matches.clear();
        return 0;
    }
    let n = matches.len();
    let lo = _mm256_set1_epi32(pred.lo as i32);
    let hi = _mm256_set1_epi32(pred.hi as i32);
    let base_v = _mm256_set1_epi32(base as i32);
    let ptr = matches.as_mut_ptr();

    let mut w = 0usize;
    let simd_iters = n / 8;
    for i in 0..simd_iters {
        let pos = _mm256_loadu_si256(ptr.add(i * 8) as *const __m256i);
        let idx = _mm256_sub_epi32(pos, base_v);
        // Gather the attribute values at the (still valid) match positions.
        let v = _mm256_i32gather_epi32::<4>(data.as_ptr() as *const i32, idx);
        let ge_lo = _mm256_cmpeq_epi32(_mm256_max_epu32(v, lo), v);
        let le_hi = _mm256_cmpeq_epi32(_mm256_min_epu32(v, hi), v);
        let mask = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_and_si256(ge_lo, le_hi))) as usize;

        // Use the table entry as a shuffle control mask to compact the surviving
        // positions to the front of the register, then store over the write cursor.
        let control = _mm256_loadu_si256(POSITIONS_8_I32[mask].as_ptr() as *const __m256i);
        let compacted = _mm256_permutevar8x32_epi32(pos, control);
        _mm256_storeu_si256(ptr.add(w) as *mut __m256i, compacted);
        w += COUNTS_8[mask] as usize;
    }

    // Tail scalar: the writes above never exceed the read cursor, so in-place
    // compaction is safe to continue element-wise.
    for r in simd_iters * 8..n {
        let pos = *ptr.add(r);
        let v = data[(pos - base) as usize];
        *ptr.add(w) = pos;
        w += pred.contains(v) as usize;
    }
    matches.truncate(w);
    w
}

/// AVX2 reduce-matches kernel for 8-byte code words (4-wide 64-bit gathers).
#[target_feature(enable = "avx2")]
pub unsafe fn reduce_matches_u64(
    data: &[u64],
    pred: &RangePredicate<u64>,
    base: u32,
    matches: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        matches.clear();
        return 0;
    }
    let n = matches.len();
    let bias = _mm256_set1_epi64x(i64::MIN);
    let lo = _mm256_xor_si256(_mm256_set1_epi64x(pred.lo as i64), bias);
    let hi = _mm256_xor_si256(_mm256_set1_epi64x(pred.hi as i64), bias);
    let base_v = _mm_set1_epi32(base as i32);
    let ptr = matches.as_mut_ptr();

    let mut w = 0usize;
    let simd_iters = n / 4;
    for i in 0..simd_iters {
        let pos = _mm_loadu_si128(ptr.add(i * 4) as *const __m128i);
        let idx = _mm_sub_epi32(pos, base_v);
        let raw = _mm256_i32gather_epi64::<8>(data.as_ptr() as *const i64, idx);
        let v = _mm256_xor_si256(raw, bias);
        let lt_lo = _mm256_cmpgt_epi64(lo, v);
        let gt_hi = _mm256_cmpgt_epi64(v, hi);
        let out_of_range = _mm256_or_si256(lt_lo, gt_hi);
        let mask = (!(_mm256_movemask_pd(_mm256_castsi256_pd(out_of_range)) as usize)) & 0b1111;

        // Compact the 4 positions scalar-wise: the table tells us which lanes survive.
        let mut lanes = [0u32; 4];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, pos);
        let count = COUNTS_4[mask] as usize;
        for k in 0..count {
            *ptr.add(w + k) = lanes[POSITIONS_4_I32[mask][k] as usize];
        }
        w += count;
    }

    for r in simd_iters * 4..n {
        let pos = *ptr.add(r);
        let v = data[(pos - base) as usize];
        *ptr.add(w) = pos;
        w += pred.contains(v) as usize;
    }
    matches.truncate(w);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{find_matches_scalar, reduce_matches_scalar};

    fn avx2_available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    fn pseudo_random(n: usize, modulus: u64, seed: u64) -> Vec<u64> {
        // xorshift64*, deterministic data for the kernel equivalence tests
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D)) % modulus
            })
            .collect()
    }

    #[test]
    fn find_u8_matches_scalar_oracle() {
        if !avx2_available() {
            return;
        }
        let data: Vec<u8> = pseudo_random(10_007, 256, 42)
            .iter()
            .map(|&v| v as u8)
            .collect();
        for (lo, hi) in [
            (0u8, 255u8),
            (10, 20),
            (200, 100),
            (5, 5),
            (0, 0),
            (255, 255),
        ] {
            let pred = RangePredicate::between(lo, hi);
            let mut expected = Vec::new();
            find_matches_scalar(&data, &pred, 7, &mut expected);
            let mut got = Vec::new();
            unsafe { find_matches_u8(&data, &pred, 7, &mut got) };
            assert_eq!(got, expected, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn find_u16_matches_scalar_oracle() {
        if !avx2_available() {
            return;
        }
        let data: Vec<u16> = pseudo_random(8_191, 65_536, 7)
            .iter()
            .map(|&v| v as u16)
            .collect();
        for (lo, hi) in [(0u16, u16::MAX), (1000, 2000), (60_000, 100), (777, 777)] {
            let pred = RangePredicate::between(lo, hi);
            let mut expected = Vec::new();
            find_matches_scalar(&data, &pred, 0, &mut expected);
            let mut got = Vec::new();
            unsafe { find_matches_u16(&data, &pred, 0, &mut got) };
            assert_eq!(got, expected, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn find_u32_matches_scalar_oracle() {
        if !avx2_available() {
            return;
        }
        let data: Vec<u32> = pseudo_random(4_099, 1 << 20, 99)
            .iter()
            .map(|&v| v as u32)
            .collect();
        for (lo, hi) in [(0u32, u32::MAX), (1 << 10, 1 << 15), (1 << 19, 1 << 10)] {
            let pred = RangePredicate::between(lo, hi);
            let mut expected = Vec::new();
            find_matches_scalar(&data, &pred, 123, &mut expected);
            let mut got = Vec::new();
            unsafe { find_matches_u32(&data, &pred, 123, &mut got) };
            assert_eq!(got, expected, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn find_u64_matches_scalar_oracle() {
        if !avx2_available() {
            return;
        }
        // Include values around the sign bit to exercise the unsigned bias.
        let mut data = pseudo_random(2_053, u64::MAX, 3);
        data.extend_from_slice(&[0, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1]);
        for (lo, hi) in [
            (0u64, u64::MAX),
            (1 << 62, 1 << 63),
            ((1 << 63) - 2, (1 << 63) + 2),
            (u64::MAX, 0),
        ] {
            let pred = RangePredicate::between(lo, hi);
            let mut expected = Vec::new();
            find_matches_scalar(&data, &pred, 0, &mut expected);
            let mut got = Vec::new();
            unsafe { find_matches_u64(&data, &pred, 0, &mut got) };
            assert_eq!(got, expected, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn reduce_u32_matches_scalar_oracle() {
        if !avx2_available() {
            return;
        }
        let data: Vec<u32> = pseudo_random(16_384, 1 << 16, 5)
            .iter()
            .map(|&v| v as u32)
            .collect();
        let first = RangePredicate::between(100u32, 40_000);
        let second = RangePredicate::between(500u32, 20_000);
        let mut expected = Vec::new();
        find_matches_scalar(&data, &first, 0, &mut expected);
        let mut got = expected.clone();
        reduce_matches_scalar(&data, &second, 0, &mut expected);
        unsafe { reduce_matches_u32(&data, &second, 0, &mut got) };
        assert_eq!(got, expected);
    }

    #[test]
    fn reduce_u64_matches_scalar_oracle() {
        if !avx2_available() {
            return;
        }
        let data = pseudo_random(9_999, 1 << 40, 11);
        let first = RangePredicate::at_least(1u64 << 20);
        let second = RangePredicate::between(1u64 << 30, 1 << 39);
        let mut expected = Vec::new();
        find_matches_scalar(&data, &first, 64, &mut expected);
        let mut got = expected.clone();
        reduce_matches_scalar(&data, &second, 64, &mut expected);
        unsafe { reduce_matches_u64(&data, &second, 64, &mut got) };
        assert_eq!(got, expected);
    }

    #[test]
    fn reduce_on_empty_match_vector() {
        if !avx2_available() {
            return;
        }
        let data: Vec<u32> = vec![1, 2, 3];
        let mut matches: Vec<u32> = Vec::new();
        let n = unsafe { reduce_matches_u32(&data, &RangePredicate::all(), 0, &mut matches) };
        assert_eq!(n, 0);
    }
}
