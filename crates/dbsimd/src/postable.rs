//! Pre-computed movemask → match-positions tables.
//!
//! A SIMD comparison yields a bit-mask with one bit per processed lane. Converting
//! that mask into the *positions* of the matching lanes with a loop or a tree
//! reduction costs O(n) or O(log n) per mask; the paper instead uses a pre-computed
//! table so the conversion is a single constant-time lookup (Section 4.2, Figure 7).
//!
//! The table is limited to 2^8 entries (one per possible 8-bit mask). Wider masks —
//! e.g. the 32-bit mask produced by a 32-way 8-bit comparison in an AVX2 register —
//! are processed one byte at a time with multiple lookups, exactly as the paper's
//! Appendix C does. The whole table is 256 × (8 × 4 B + 4 B) = 9 KB and fits in L1.

/// One entry of the positions table: the lane indexes of the set bits of an 8-bit
/// mask, plus how many bits were set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosEntry {
    /// Number of set bits in the mask (0..=8).
    pub count: u8,
    /// Lane indexes of the set bits, in ascending order. Slots past `count` are 0 and
    /// must be ignored (they are "don't care" values overwritten by the next store,
    /// mirroring the paper's Figure 7(b)).
    pub pos: [u8; 8],
}

impl PosEntry {
    /// The matching lane indexes as a slice.
    pub fn positions(&self) -> &[u8] {
        &self.pos[..self.count as usize]
    }
}

const fn build_table() -> [PosEntry; 256] {
    let mut table = [PosEntry {
        count: 0,
        pos: [0u8; 8],
    }; 256];
    let mut mask = 0usize;
    while mask < 256 {
        let mut count = 0u8;
        let mut bit = 0u8;
        while bit < 8 {
            if (mask >> bit) & 1 == 1 {
                table[mask].pos[count as usize] = bit;
                count += 1;
            }
            bit += 1;
        }
        table[mask].count = count;
        mask += 1;
    }
    table
}

/// The 256-entry positions table for 8-bit masks.
pub static POSITIONS_8: [PosEntry; 256] = build_table();

/// Positions table pre-widened to `i32` lanes, laid out so an AVX2 kernel can load a
/// full entry with a single 256-bit load and add the scan position vector to it
/// (mirrors the `matchTable` of the paper's Appendix C, minus the count packed into
/// the low bits — the count lives in [`COUNTS_8`] instead, which avoids the extra
/// shift in the hot loop).
pub static POSITIONS_8_I32: [[i32; 8]; 256] = build_table_i32();

/// Number of set bits for every 8-bit mask (companion to [`POSITIONS_8_I32`]).
pub static COUNTS_8: [u8; 256] = build_counts();

const fn build_table_i32() -> [[i32; 8]; 256] {
    let mut table = [[0i32; 8]; 256];
    let mut mask = 0usize;
    while mask < 256 {
        let mut count = 0usize;
        let mut bit = 0;
        while bit < 8 {
            if (mask >> bit) & 1 == 1 {
                table[mask][count] = bit;
                count += 1;
            }
            bit += 1;
        }
        mask += 1;
    }
    table
}

const fn build_counts() -> [u8; 256] {
    let mut counts = [0u8; 256];
    let mut mask = 0usize;
    while mask < 256 {
        counts[mask] = (mask as u32).count_ones() as u8;
        mask += 1;
    }
    counts
}

/// Positions table for 4-bit masks (used by the 4-lane 64-bit kernels, where
/// `movemask_pd` yields only four bits). Each entry holds at most 4 positions.
pub static POSITIONS_4_I32: [[i32; 4]; 16] = build_table_4();

/// Number of set bits for every 4-bit mask (companion to [`POSITIONS_4_I32`]).
pub static COUNTS_4: [u8; 16] = build_counts_4();

const fn build_table_4() -> [[i32; 4]; 16] {
    let mut table = [[0i32; 4]; 16];
    let mut mask = 0usize;
    while mask < 16 {
        let mut count = 0usize;
        let mut bit = 0;
        while bit < 4 {
            if (mask >> bit) & 1 == 1 {
                table[mask][count] = bit;
                count += 1;
            }
            bit += 1;
        }
        mask += 1;
    }
    table
}

const fn build_counts_4() -> [u8; 16] {
    let mut counts = [0u8; 16];
    let mut mask = 0usize;
    while mask < 16 {
        counts[mask] = (mask as u32).count_ones() as u8;
        mask += 1;
    }
    counts
}

/// Expand an 8-bit mask into the positions of its set bits using the table.
///
/// This is the scalar-visible interface used by tests and by the bit-packing
/// baseline's "robust" variant (Section 5.4 applies the same table to make
/// bit-packing insensitive to selectivity).
#[inline]
pub fn expand_mask8(mask: u8, base: u32, out: &mut Vec<u32>) -> usize {
    let entry = &POSITIONS_8[mask as usize];
    for &p in entry.positions() {
        out.push(base + p as u32);
    }
    entry.count as usize
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)] // masks double as table indexes

    use super::*;

    #[test]
    fn entry_zero_is_empty() {
        assert_eq!(POSITIONS_8[0].count, 0);
        assert!(POSITIONS_8[0].positions().is_empty());
    }

    #[test]
    fn entry_all_ones() {
        let e = &POSITIONS_8[0xFF];
        assert_eq!(e.count, 8);
        assert_eq!(e.positions(), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn paper_example_mask_154() {
        // Figure 7(a): movemask 0b10011010 = 154 decodes to lanes {1, 3, 4, 7}
        // (bit order: LSB = lane 0). The figure counts lanes from the left, the code
        // counts from bit 0; either way the set-bit positions are what matters.
        let e = &POSITIONS_8[0b1001_1010];
        assert_eq!(e.positions(), &[1, 3, 4, 7]);
    }

    #[test]
    fn counts_match_popcount() {
        for mask in 0..=255u32 {
            assert_eq!(POSITIONS_8[mask as usize].count as u32, mask.count_ones());
            assert_eq!(COUNTS_8[mask as usize] as u32, mask.count_ones());
        }
    }

    #[test]
    fn i32_table_matches_u8_table() {
        for mask in 0..256usize {
            let e = &POSITIONS_8[mask];
            for i in 0..e.count as usize {
                assert_eq!(POSITIONS_8_I32[mask][i], e.pos[i] as i32);
            }
        }
    }

    #[test]
    fn table4_matches_low_bits_of_table8() {
        for mask in 0..16usize {
            assert_eq!(COUNTS_4[mask], COUNTS_8[mask]);
            for i in 0..COUNTS_4[mask] as usize {
                assert_eq!(POSITIONS_4_I32[mask][i], POSITIONS_8_I32[mask][i]);
            }
        }
    }

    #[test]
    fn positions_are_strictly_increasing() {
        for mask in 0..256usize {
            let e = &POSITIONS_8[mask];
            for w in e.positions().windows(2) {
                assert!(w[0] < w[1], "mask {mask:#010b}");
            }
        }
    }

    #[test]
    fn expand_mask8_appends_with_base() {
        let mut out = vec![99];
        let n = expand_mask8(0b0000_0101, 10, &mut out);
        assert_eq!(n, 2);
        assert_eq!(out, vec![99, 10, 12]);
    }
}
