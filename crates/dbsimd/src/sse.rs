//! SSE4.1 (128-bit) find-matches kernels.
//!
//! These exist to reproduce the "SSE" series of the paper's Figure 8. They use the
//! same movemask → positions-table conversion as the AVX2 kernels, with half the lane
//! count. Reduce-matches has no SSE variant (the paper evaluates reduce only for
//! scalar vs AVX2, Figure 9), so SSE callers fall back to the scalar reduce kernel.
//!
//! # Safety
//!
//! Functions require the `sse4.1` target feature; callers dispatch through
//! [`crate::find_matches`] which performs runtime detection.

#![allow(clippy::missing_safety_doc)]

use crate::postable::{COUNTS_4, COUNTS_8, POSITIONS_4_I32, POSITIONS_8_I32};
use crate::predicate::RangePredicate;
use crate::scalar;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

#[inline]
fn prepare_out(out: &mut Vec<u32>, extra: usize, slack: usize) -> usize {
    let start = out.len();
    out.reserve(extra + slack);
    start
}

/// SSE4.1 find-matches kernel for 1-byte code words (16 lanes per iteration).
#[target_feature(enable = "sse4.1")]
#[allow(clippy::needless_range_loop)] // positions-table expansion over raw pointers
pub unsafe fn find_matches_u8(
    data: &[u8],
    pred: &RangePredicate<u8>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        return 0;
    }
    let start = prepare_out(out, data.len(), 8);
    let ptr = out.as_mut_ptr().add(start);
    let mut w = 0usize;

    let lo = _mm_set1_epi8(pred.lo as i8);
    let hi = _mm_set1_epi8(pred.hi as i8);
    let simd_iters = data.len() / 16;

    for i in 0..simd_iters {
        let scan_pos = (i * 16) as u32;
        let v = _mm_loadu_si128(data.as_ptr().add(i * 16) as *const __m128i);
        let ge_lo = _mm_cmpeq_epi8(_mm_max_epu8(v, lo), v);
        let le_hi = _mm_cmpeq_epi8(_mm_min_epu8(v, hi), v);
        let mask = _mm_movemask_epi8(_mm_and_si128(ge_lo, le_hi)) as u32;

        let mut sub = 0u32;
        let mut m = mask;
        while sub < 16 {
            let byte = (m & 0xFF) as usize;
            for k in 0..COUNTS_8[byte] as usize {
                *ptr.add(w + k) = base + scan_pos + sub + POSITIONS_8_I32[byte][k] as u32;
            }
            w += COUNTS_8[byte] as usize;
            m >>= 8;
            sub += 8;
        }
    }
    out.set_len(start + w);

    let tail_start = simd_iters * 16;
    let tail =
        scalar::find_matches_scalar(&data[tail_start..], pred, base + tail_start as u32, out);
    w + tail
}

/// SSE4.1 find-matches kernel for 2-byte code words (8 lanes per iteration).
#[target_feature(enable = "sse4.1")]
#[allow(clippy::needless_range_loop)] // positions-table expansion over raw pointers
pub unsafe fn find_matches_u16(
    data: &[u16],
    pred: &RangePredicate<u16>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        return 0;
    }
    let start = prepare_out(out, data.len(), 8);
    let ptr = out.as_mut_ptr().add(start);
    let mut w = 0usize;

    let lo = _mm_set1_epi16(pred.lo as i16);
    let hi = _mm_set1_epi16(pred.hi as i16);
    let zero = _mm_setzero_si128();
    let simd_iters = data.len() / 8;

    for i in 0..simd_iters {
        let scan_pos = (i * 8) as u32;
        let v = _mm_loadu_si128(data.as_ptr().add(i * 8) as *const __m128i);
        let ge_lo = _mm_cmpeq_epi16(_mm_max_epu16(v, lo), v);
        let le_hi = _mm_cmpeq_epi16(_mm_min_epu16(v, hi), v);
        let m16 = _mm_and_si128(ge_lo, le_hi);
        // Pack the 8 16-bit lanes down to bytes: movemask's low 8 bits then carry one
        // bit per original lane.
        let mask = (_mm_movemask_epi8(_mm_packs_epi16(m16, zero)) & 0xFF) as usize;

        for k in 0..COUNTS_8[mask] as usize {
            *ptr.add(w + k) = base + scan_pos + POSITIONS_8_I32[mask][k] as u32;
        }
        w += COUNTS_8[mask] as usize;
    }
    out.set_len(start + w);

    let tail_start = simd_iters * 8;
    let tail =
        scalar::find_matches_scalar(&data[tail_start..], pred, base + tail_start as u32, out);
    w + tail
}

/// SSE4.1 find-matches kernel for 4-byte code words (4 lanes per iteration).
#[target_feature(enable = "sse4.1")]
pub unsafe fn find_matches_u32(
    data: &[u32],
    pred: &RangePredicate<u32>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        return 0;
    }
    let start = prepare_out(out, data.len(), 4);
    let ptr = out.as_mut_ptr().add(start);
    let mut w = 0usize;

    let lo = _mm_set1_epi32(pred.lo as i32);
    let hi = _mm_set1_epi32(pred.hi as i32);
    let simd_iters = data.len() / 4;

    for i in 0..simd_iters {
        let scan_pos = (i * 4) as u32;
        let v = _mm_loadu_si128(data.as_ptr().add(i * 4) as *const __m128i);
        let ge_lo = _mm_cmpeq_epi32(_mm_max_epu32(v, lo), v);
        let le_hi = _mm_cmpeq_epi32(_mm_min_epu32(v, hi), v);
        let mask = _mm_movemask_ps(_mm_castsi128_ps(_mm_and_si128(ge_lo, le_hi))) as usize;

        let entry = _mm_loadu_si128(POSITIONS_4_I32[mask].as_ptr() as *const __m128i);
        let positions = _mm_add_epi32(entry, _mm_set1_epi32((base + scan_pos) as i32));
        _mm_storeu_si128(ptr.add(w) as *mut __m128i, positions);
        w += COUNTS_4[mask] as usize;
    }
    out.set_len(start + w);

    let tail_start = simd_iters * 4;
    let tail =
        scalar::find_matches_scalar(&data[tail_start..], pred, base + tail_start as u32, out);
    w + tail
}

/// SSE find-matches for 8-byte code words.
///
/// With only two lanes per 128-bit register the SIMD benefit disappears (the paper
/// notes SSE parallelism is "too small to recognize performance benefits" for 64-bit
/// values), so this simply delegates to the scalar kernel.
pub fn find_matches_u64(
    data: &[u64],
    pred: &RangePredicate<u64>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    scalar::find_matches_scalar(data, pred, base, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::find_matches_scalar;

    fn sse_available() -> bool {
        std::arch::is_x86_feature_detected!("sse4.1")
    }

    fn data_u32(n: usize, modulus: u32) -> Vec<u32> {
        let mut x = 0x9E37_79B9u32;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x % modulus
            })
            .collect()
    }

    #[test]
    fn sse_u8_matches_scalar_oracle() {
        if !sse_available() {
            return;
        }
        let data: Vec<u8> = data_u32(5_003, 256).iter().map(|&v| v as u8).collect();
        for (lo, hi) in [(0u8, 255), (20, 60), (250, 10), (128, 128)] {
            let pred = RangePredicate::between(lo, hi);
            let mut expected = Vec::new();
            find_matches_scalar(&data, &pred, 3, &mut expected);
            let mut got = Vec::new();
            unsafe { find_matches_u8(&data, &pred, 3, &mut got) };
            assert_eq!(got, expected, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn sse_u16_matches_scalar_oracle() {
        if !sse_available() {
            return;
        }
        let data: Vec<u16> = data_u32(4_001, 65_536).iter().map(|&v| v as u16).collect();
        for (lo, hi) in [(0u16, u16::MAX), (1_000, 30_000), (50_000, 2)] {
            let pred = RangePredicate::between(lo, hi);
            let mut expected = Vec::new();
            find_matches_scalar(&data, &pred, 0, &mut expected);
            let mut got = Vec::new();
            unsafe { find_matches_u16(&data, &pred, 0, &mut got) };
            assert_eq!(got, expected, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn sse_u32_matches_scalar_oracle() {
        if !sse_available() {
            return;
        }
        let data = data_u32(3_001, 1 << 24);
        for (lo, hi) in [(0u32, u32::MAX), (1 << 10, 1 << 20), (1 << 23, 1 << 22)] {
            let pred = RangePredicate::between(lo, hi);
            let mut expected = Vec::new();
            find_matches_scalar(&data, &pred, 11, &mut expected);
            let mut got = Vec::new();
            unsafe { find_matches_u32(&data, &pred, 11, &mut got) };
            assert_eq!(got, expected, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn sse_u64_delegates_to_scalar() {
        let data: Vec<u64> = (0..100).collect();
        let pred = RangePredicate::between(10u64, 20);
        let mut expected = Vec::new();
        find_matches_scalar(&data, &pred, 0, &mut expected);
        let mut got = Vec::new();
        find_matches_u64(&data, &pred, 0, &mut got);
        assert_eq!(got, expected);
    }
}
