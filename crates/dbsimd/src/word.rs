//! Per-width dispatch between the scalar, SSE and AVX2 kernels.

use crate::predicate::{CodeWord, RangePredicate};
use crate::scalar;
use crate::IsaLevel;

/// The code-word widths supported by the SIMD kernels (1-, 2-, 4- and 8-byte unsigned
/// integers — exactly the widths Data Blocks compress attributes into).
///
/// The trait is sealed: the kernels are hand-written per width and the set of widths
/// is fixed by the storage format.
pub trait ScanWord: CodeWord + sealed::Sealed {
    /// Dispatch a find-matches call to the kernel for the requested ISA level.
    fn find(
        isa: IsaLevel,
        data: &[Self],
        pred: &RangePredicate<Self>,
        base: u32,
        out: &mut Vec<u32>,
    ) -> usize;

    /// Dispatch a reduce-matches call to the kernel for the requested ISA level.
    fn reduce(
        isa: IsaLevel,
        data: &[Self],
        pred: &RangePredicate<Self>,
        base: u32,
        matches: &mut Vec<u32>,
    ) -> usize;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

macro_rules! impl_scan_word {
    ($t:ty, $find_sse:path, $find_avx2:path, $reduce_avx2:expr) => {
        impl ScanWord for $t {
            fn find(
                isa: IsaLevel,
                data: &[Self],
                pred: &RangePredicate<Self>,
                base: u32,
                out: &mut Vec<u32>,
            ) -> usize {
                match isa {
                    IsaLevel::Scalar => scalar::find_matches_scalar(data, pred, base, out),
                    #[cfg(target_arch = "x86_64")]
                    IsaLevel::Sse => unsafe { $find_sse(data, pred, base, out) },
                    #[cfg(target_arch = "x86_64")]
                    IsaLevel::Avx2 => unsafe { $find_avx2(data, pred, base, out) },
                    #[cfg(not(target_arch = "x86_64"))]
                    _ => scalar::find_matches_scalar(data, pred, base, out),
                }
            }

            fn reduce(
                isa: IsaLevel,
                data: &[Self],
                pred: &RangePredicate<Self>,
                base: u32,
                matches: &mut Vec<u32>,
            ) -> usize {
                match isa {
                    #[cfg(target_arch = "x86_64")]
                    IsaLevel::Avx2 => {
                        let f: Option<
                            unsafe fn(&[Self], &RangePredicate<Self>, u32, &mut Vec<u32>) -> usize,
                        > = $reduce_avx2;
                        match f {
                            Some(kernel) => unsafe { kernel(data, pred, base, matches) },
                            None => scalar::reduce_matches_scalar(data, pred, base, matches),
                        }
                    }
                    _ => scalar::reduce_matches_scalar(data, pred, base, matches),
                }
            }
        }
    };
}

// 8- and 16-bit reduce kernels fall back to scalar: AVX2 has no 8/16-bit gathers, and
// the paper notes the emulated gathers bring no benefit for those widths.
impl_scan_word!(
    u8,
    crate::sse::find_matches_u8,
    crate::avx2::find_matches_u8,
    None
);
impl_scan_word!(
    u16,
    crate::sse::find_matches_u16,
    crate::avx2::find_matches_u16,
    None
);
impl_scan_word!(
    u32,
    crate::sse::find_matches_u32,
    crate::avx2::find_matches_u32,
    Some(crate::avx2::reduce_matches_u32)
);

// SSE u64 find is a plain (safe) scalar delegate, so wrap it to match the unsafe ABI
// expected by the macro.
#[cfg(target_arch = "x86_64")]
unsafe fn sse_find_u64(
    data: &[u64],
    pred: &RangePredicate<u64>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    crate::sse::find_matches_u64(data, pred, base, out)
}

impl_scan_word!(
    u64,
    sse_find_u64,
    crate::avx2::find_matches_u64,
    Some(crate::avx2::reduce_matches_u64)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_matches, reduce_matches};

    fn gen_u32(n: usize, modulus: u32) -> Vec<u32> {
        let mut x = 0xACE1u32;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x % modulus
            })
            .collect()
    }

    fn check_all_isas<T: ScanWord>(data: &[T], pred: RangePredicate<T>) {
        let mut expected = Vec::new();
        scalar::find_matches_scalar(data, &pred, 0, &mut expected);
        for isa in IsaLevel::available() {
            let mut got = Vec::new();
            find_matches(isa, data, &pred, 0, &mut got);
            assert_eq!(got, expected, "find isa={isa:?}");

            let mut all: Vec<u32> = (0..data.len() as u32).collect();
            let mut all_expected = all.clone();
            scalar::reduce_matches_scalar(data, &pred, 0, &mut all_expected);
            reduce_matches(isa, data, &pred, 0, &mut all);
            assert_eq!(all, all_expected, "reduce isa={isa:?}");
        }
    }

    #[test]
    fn all_widths_all_isas_agree() {
        let raw = gen_u32(3_333, 60_000);
        let d8: Vec<u8> = raw.iter().map(|&v| (v % 256) as u8).collect();
        check_all_isas::<u8>(&d8, RangePredicate::between(40, 200));
        let d16: Vec<u16> = raw.iter().map(|&v| v as u16).collect();
        check_all_isas::<u16>(&d16, RangePredicate::between(5_000, 30_000));
        let d32: Vec<u32> = raw.iter().map(|&v| v * 7).collect();
        check_all_isas::<u32>(&d32, RangePredicate::between(10_000, 200_000));
        let d64: Vec<u64> = d32.iter().map(|&v| v as u64 * 1_000_003).collect();
        check_all_isas::<u64>(&d64, RangePredicate::at_least(50_000_000));
    }
}
