//! SARGable predicate representation.
//!
//! All SARGable comparisons on integer code words (`=`, `<`, `<=`, `>`, `>=`,
//! `between`) are normalised into an inclusive [`RangePredicate`] `lo <= x <= hi`.
//! This is the only shape the SIMD kernels need to understand: an equality becomes a
//! degenerate range, a one-sided comparison saturates the other bound at the domain
//! limit, and an empty range (`lo > hi`) matches nothing.

/// A SARGable comparison operator, as they appear in scan restrictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `attribute = constant`
    Eq,
    /// `attribute <> constant` — note: *not* range-normalisable; handled by the caller
    /// as the complement of an equality range.
    Ne,
    /// `attribute < constant`
    Lt,
    /// `attribute <= constant`
    Le,
    /// `attribute > constant`
    Gt,
    /// `attribute >= constant`
    Ge,
}

impl CmpOp {
    /// Evaluate the operator on two ordered values.
    pub fn eval<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The operator with its operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Marker trait for the unsigned code-word types the kernels operate on.
pub trait CodeWord: Copy + Ord + std::fmt::Debug {
    /// Smallest representable value.
    const MIN_VALUE: Self;
    /// Largest representable value.
    const MAX_VALUE: Self;
    /// `self + 1` saturating at the domain maximum.
    fn saturating_next(self) -> Self;
    /// `self - 1` saturating at the domain minimum.
    fn saturating_prev(self) -> Self;
    /// Widening conversion to `u64` (used for PSMA deltas and diagnostics).
    fn as_u64(self) -> u64;
}

macro_rules! impl_code_word {
    ($($t:ty),*) => {$(
        impl CodeWord for $t {
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            #[inline]
            fn saturating_next(self) -> Self { self.saturating_add(1) }
            #[inline]
            fn saturating_prev(self) -> Self { self.saturating_sub(1) }
            #[inline]
            fn as_u64(self) -> u64 { self as u64 }
        }
    )*};
}

impl_code_word!(u8, u16, u32, u64);

/// An inclusive range predicate `lo <= x <= hi` over integer code words.
///
/// Empty ranges (`lo > hi`) are representable and match nothing; they arise naturally
/// when a scan restriction contradicts a block's SMA or dictionary domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangePredicate<T> {
    /// Inclusive lower bound.
    pub lo: T,
    /// Inclusive upper bound.
    pub hi: T,
}

impl<T: CodeWord> RangePredicate<T> {
    /// Range matching exactly `value`.
    pub fn equals(value: T) -> Self {
        RangePredicate {
            lo: value,
            hi: value,
        }
    }

    /// Range matching `lo <= x <= hi` (a SQL `BETWEEN`).
    pub fn between(lo: T, hi: T) -> Self {
        RangePredicate { lo, hi }
    }

    /// Range matching `x >= value`.
    pub fn at_least(value: T) -> Self {
        RangePredicate {
            lo: value,
            hi: T::MAX_VALUE,
        }
    }

    /// Range matching `x <= value`.
    pub fn at_most(value: T) -> Self {
        RangePredicate {
            lo: T::MIN_VALUE,
            hi: value,
        }
    }

    /// Range matching everything in the domain.
    pub fn all() -> Self {
        RangePredicate {
            lo: T::MIN_VALUE,
            hi: T::MAX_VALUE,
        }
    }

    /// A canonical empty range matching nothing.
    pub fn empty() -> Self {
        RangePredicate {
            lo: T::MAX_VALUE,
            hi: T::MIN_VALUE,
        }
    }

    /// Normalise `x op constant` into an inclusive range.
    ///
    /// Returns `None` for [`CmpOp::Ne`], which is not expressible as a single range —
    /// callers evaluate it as the complement of [`RangePredicate::equals`].
    pub fn from_cmp(op: CmpOp, constant: T) -> Option<Self> {
        match op {
            CmpOp::Eq => Some(Self::equals(constant)),
            CmpOp::Ne => None,
            CmpOp::Lt => {
                if constant == T::MIN_VALUE {
                    Some(Self::empty())
                } else {
                    Some(Self::at_most(constant.saturating_prev()))
                }
            }
            CmpOp::Le => Some(Self::at_most(constant)),
            CmpOp::Gt => {
                if constant == T::MAX_VALUE {
                    Some(Self::empty())
                } else {
                    Some(Self::at_least(constant.saturating_next()))
                }
            }
            CmpOp::Ge => Some(Self::at_least(constant)),
        }
    }

    /// Does `value` satisfy the predicate?
    #[inline(always)]
    pub fn contains(&self, value: T) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// True if the range can never match.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// True if the range matches the whole domain.
    pub fn is_all(&self) -> bool {
        self.lo == T::MIN_VALUE && self.hi == T::MAX_VALUE
    }

    /// Intersect two conjunctive range predicates on the same attribute.
    pub fn intersect(&self, other: &Self) -> Self {
        RangePredicate {
            lo: if self.lo > other.lo {
                self.lo
            } else {
                other.lo
            },
            hi: if self.hi < other.hi {
                self.hi
            } else {
                other.hi
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(!CmpOp::Eq.eval(3, 4));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(CmpOp::Lt.eval(3, 4));
        assert!(!CmpOp::Lt.eval(4, 4));
        assert!(CmpOp::Le.eval(4, 4));
        assert!(CmpOp::Gt.eval(5, 4));
        assert!(CmpOp::Ge.eval(4, 4));
    }

    #[test]
    fn cmp_op_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Gt.flip(), CmpOp::Lt);
        assert_eq!(CmpOp::Ge.flip(), CmpOp::Le);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Ne.flip(), CmpOp::Ne);
        // flipping twice is the identity
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn equals_is_degenerate_range() {
        let p = RangePredicate::equals(42u32);
        assert!(p.contains(42));
        assert!(!p.contains(41));
        assert!(!p.contains(43));
    }

    #[test]
    fn from_cmp_lt_le_gt_ge() {
        let lt = RangePredicate::from_cmp(CmpOp::Lt, 10u8).unwrap();
        assert!(lt.contains(9));
        assert!(!lt.contains(10));
        let le = RangePredicate::from_cmp(CmpOp::Le, 10u8).unwrap();
        assert!(le.contains(10));
        assert!(!le.contains(11));
        let gt = RangePredicate::from_cmp(CmpOp::Gt, 10u8).unwrap();
        assert!(!gt.contains(10));
        assert!(gt.contains(11));
        let ge = RangePredicate::from_cmp(CmpOp::Ge, 10u8).unwrap();
        assert!(ge.contains(10));
        assert!(!ge.contains(9));
    }

    #[test]
    fn from_cmp_ne_is_none() {
        assert!(RangePredicate::from_cmp(CmpOp::Ne, 7u16).is_none());
    }

    #[test]
    fn from_cmp_boundary_saturation() {
        // x < MIN matches nothing
        let p = RangePredicate::from_cmp(CmpOp::Lt, u8::MIN).unwrap();
        assert!(p.is_empty());
        // x > MAX matches nothing
        let p = RangePredicate::from_cmp(CmpOp::Gt, u8::MAX).unwrap();
        assert!(p.is_empty());
        // x <= MAX matches everything
        let p = RangePredicate::from_cmp(CmpOp::Le, u8::MAX).unwrap();
        assert!(p.is_all());
        // x >= MIN matches everything
        let p = RangePredicate::from_cmp(CmpOp::Ge, u8::MIN).unwrap();
        assert!(p.is_all());
    }

    #[test]
    fn empty_and_all() {
        let e = RangePredicate::<u32>::empty();
        assert!(e.is_empty());
        assert!(!e.contains(0));
        assert!(!e.contains(u32::MAX));
        let a = RangePredicate::<u32>::all();
        assert!(a.is_all());
        assert!(a.contains(0));
        assert!(a.contains(u32::MAX));
    }

    #[test]
    fn intersect_ranges() {
        let a = RangePredicate::between(10u32, 50);
        let b = RangePredicate::between(30u32, 80);
        let c = a.intersect(&b);
        assert_eq!(c, RangePredicate::between(30, 50));
        let d = RangePredicate::between(60u32, 70);
        assert!(a.intersect(&d).is_empty());
    }

    #[test]
    fn intersect_with_all_is_identity() {
        let a = RangePredicate::between(10u64, 50);
        assert_eq!(a.intersect(&RangePredicate::all()), a);
    }
}
