//! # dbsimd — SIMD predicate-evaluation kernels
//!
//! This crate implements the vectorized predicate-evaluation subsystem described in
//! Section 4.2 of *"Data Blocks: Hybrid OLTP and OLAP on Compressed Storage using both
//! Vectorization and Compilation"* (SIGMOD 2016):
//!
//! * **Find initial matches** — scan a contiguous integer column (the compressed code
//!   words of a Data Block attribute, or a raw uncompressed column), evaluate a
//!   SARGable range predicate and produce a *match vector* of global record positions.
//! * **Reduce matches** — given an existing match vector, gather the attribute values
//!   at those positions, evaluate a further conjunctive predicate, and shrink the
//!   match vector in place.
//!
//! Both operations avoid the expensive bit-mask → position conversion by using a
//! pre-computed positions table indexed by the `movemask` of an 8-way SIMD comparison
//! (see [`postable`]). The kernels come in three ISA flavours — portable scalar
//! (branch-free), SSE (128-bit) and AVX2 (256-bit) — selected at runtime via
//! [`IsaLevel::detect`] or forced explicitly, which is what the paper's Figure 8 and
//! Figure 9 micro-benchmarks do.
//!
//! All predicates are normalised to an inclusive [`RangePredicate`] (`lo <= x <= hi`),
//! which covers every SARGable comparison (`=`, `<`, `<=`, `>`, `>=`, `between`) on
//! unsigned code words. Data Blocks always store compressed data as unsigned 1-, 2-,
//! 4- or 8-byte integers, so these four widths are the only ones the kernels support;
//! everything else falls back to scalar evaluation in the execution layer.
//!
//! ```
//! use dbsimd::{find_matches, reduce_matches, IsaLevel, RangePredicate};
//!
//! let data: Vec<u32> = (0..1000).collect();
//! let isa = IsaLevel::detect();
//! let mut matches = Vec::new();
//! // 100 <= x <= 199
//! find_matches(isa, &data, &RangePredicate::between(100u32, 199), 0, &mut matches);
//! assert_eq!(matches.len(), 100);
//! // and x >= 150
//! reduce_matches(isa, &data, &RangePredicate::at_least(150u32), 0, &mut matches);
//! assert_eq!(matches.len(), 50);
//! assert_eq!(matches[0], 150);
//! ```

pub mod postable;
pub mod predicate;
pub mod scalar;
mod word;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod sse;

pub use predicate::{CmpOp, RangePredicate};
pub use word::ScanWord;

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set level used by the kernels.
///
/// `Scalar` is the portable branch-free fallback, `Sse` uses 128-bit SSE4.1 vectors
/// and `Avx2` uses 256-bit AVX2 vectors (with gathers for the reduce kernels). The
/// micro-benchmarks of the paper's Figures 8 and 9 compare exactly these levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsaLevel {
    /// Portable scalar (branch-free) code. Always available.
    Scalar,
    /// 128-bit SSE4.1 kernels (find-matches only; reduce falls back to scalar).
    Sse,
    /// 256-bit AVX2 kernels, including gather-based reduce-matches.
    Avx2,
}

const ISA_UNKNOWN: u8 = 0;
const ISA_SCALAR: u8 = 1;
const ISA_SSE: u8 = 2;
const ISA_AVX2: u8 = 3;

static DETECTED: AtomicU8 = AtomicU8::new(ISA_UNKNOWN);

impl IsaLevel {
    /// Detect the best ISA level supported by the current CPU.
    ///
    /// The result is cached; detection runs at most once per process.
    pub fn detect() -> IsaLevel {
        match DETECTED.load(Ordering::Relaxed) {
            ISA_SCALAR => return IsaLevel::Scalar,
            ISA_SSE => return IsaLevel::Sse,
            ISA_AVX2 => return IsaLevel::Avx2,
            _ => {}
        }
        let level = Self::detect_uncached();
        let tag = match level {
            IsaLevel::Scalar => ISA_SCALAR,
            IsaLevel::Sse => ISA_SSE,
            IsaLevel::Avx2 => ISA_AVX2,
        };
        DETECTED.store(tag, Ordering::Relaxed);
        level
    }

    fn detect_uncached() -> IsaLevel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return IsaLevel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse4.1") {
                return IsaLevel::Sse;
            }
        }
        IsaLevel::Scalar
    }

    /// All ISA levels available on this machine, weakest first.
    ///
    /// Useful for benchmarks that sweep over the available levels.
    pub fn available() -> Vec<IsaLevel> {
        let best = Self::detect();
        let mut v = vec![IsaLevel::Scalar];
        if best >= IsaLevel::Sse {
            v.push(IsaLevel::Sse);
        }
        if best >= IsaLevel::Avx2 {
            v.push(IsaLevel::Avx2);
        }
        v
    }
}

impl std::fmt::Display for IsaLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaLevel::Scalar => write!(f, "x86 scalar"),
            IsaLevel::Sse => write!(f, "SSE"),
            IsaLevel::Avx2 => write!(f, "AVX2"),
        }
    }
}

/// Append the global positions (`base + index`) of all elements of `data` that satisfy
/// `pred` to `out`, returning the number of positions appended.
///
/// This is the *find initial matches* kernel of Section 4.2. Positions are appended in
/// ascending order. The requested `isa` level is honoured if supported by the CPU,
/// otherwise the call silently degrades to the strongest supported level.
pub fn find_matches<T: ScanWord>(
    isa: IsaLevel,
    data: &[T],
    pred: &RangePredicate<T>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    let isa = clamp_isa(isa);
    T::find(isa, data, pred, base, out)
}

/// Shrink an existing match vector by applying an additional conjunctive predicate.
///
/// Every position `p` in `matches` refers to `data[(p - base) as usize]`; positions
/// whose value does not satisfy `pred` are removed in place (order preserved). Returns
/// the new number of matches. This is the *reduce matches* kernel of Section 4.2,
/// implemented with SIMD gathers on AVX2.
pub fn reduce_matches<T: ScanWord>(
    isa: IsaLevel,
    data: &[T],
    pred: &RangePredicate<T>,
    base: u32,
    matches: &mut Vec<u32>,
) -> usize {
    let isa = clamp_isa(isa);
    T::reduce(isa, data, pred, base, matches)
}

fn clamp_isa(requested: IsaLevel) -> IsaLevel {
    let best = IsaLevel::detect();
    if requested <= best {
        requested
    } else {
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable() {
        let a = IsaLevel::detect();
        let b = IsaLevel::detect();
        assert_eq!(a, b);
    }

    #[test]
    fn available_contains_scalar() {
        let levels = IsaLevel::available();
        assert!(levels.contains(&IsaLevel::Scalar));
        assert!(!levels.is_empty());
    }

    #[test]
    fn clamp_never_exceeds_best() {
        let best = IsaLevel::detect();
        assert!(clamp_isa(IsaLevel::Avx2) <= best || best == IsaLevel::Avx2);
        assert_eq!(clamp_isa(IsaLevel::Scalar), IsaLevel::Scalar);
    }

    #[test]
    fn doc_example() {
        let data: Vec<u32> = (0..1000).collect();
        let isa = IsaLevel::detect();
        let mut matches = Vec::new();
        find_matches(
            isa,
            &data,
            &RangePredicate::between(100u32, 199),
            0,
            &mut matches,
        );
        assert_eq!(matches.len(), 100);
        reduce_matches(
            isa,
            &data,
            &RangePredicate::at_least(150u32),
            0,
            &mut matches,
        );
        assert_eq!(matches.len(), 50);
        assert_eq!(matches[0], 150);
    }

    #[test]
    fn display_names() {
        assert_eq!(IsaLevel::Scalar.to_string(), "x86 scalar");
        assert_eq!(IsaLevel::Sse.to_string(), "SSE");
        assert_eq!(IsaLevel::Avx2.to_string(), "AVX2");
    }
}
