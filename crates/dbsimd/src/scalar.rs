//! Portable branch-free scalar kernels.
//!
//! These are the "x86" baselines of the paper's Figures 8 and 9: plain scalar code
//! that writes the candidate position unconditionally and advances the write cursor
//! by the boolean outcome of the comparison, so the hot loop contains no
//! data-dependent branches regardless of selectivity.

use crate::predicate::{CodeWord, RangePredicate};

/// Find all matches of `pred` in `data`, appending `base + index` for every match.
///
/// Returns the number of matches appended to `out`.
pub fn find_matches_scalar<T: CodeWord>(
    data: &[T],
    pred: &RangePredicate<T>,
    base: u32,
    out: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        return 0;
    }
    let start = out.len();
    out.reserve(data.len());
    // Branch-free selection: write the position unconditionally, advance the write
    // cursor only when the predicate holds. The unsafe block writes only into memory
    // reserved above and the final set_len never exceeds `start + data.len()`.
    unsafe {
        let ptr = out.as_mut_ptr().add(start);
        let mut w = 0usize;
        for (i, &v) in data.iter().enumerate() {
            *ptr.add(w) = base + i as u32;
            w += pred.contains(v) as usize;
        }
        out.set_len(start + w);
        w
    }
}

/// Reduce an existing match vector by an additional conjunctive predicate.
///
/// Positions in `matches` refer to `data[(p - base) as usize]`. Returns the number of
/// surviving matches.
pub fn reduce_matches_scalar<T: CodeWord>(
    data: &[T],
    pred: &RangePredicate<T>,
    base: u32,
    matches: &mut Vec<u32>,
) -> usize {
    if pred.is_empty() {
        matches.clear();
        return 0;
    }
    let mut w = 0usize;
    for r in 0..matches.len() {
        let pos = matches[r];
        let idx = (pos - base) as usize;
        let v = data[idx];
        matches[w] = pos;
        w += pred.contains(v) as usize;
    }
    matches.truncate(w);
    w
}

/// Count matches without materialising positions (used by SMA-only scans and by the
/// unit tests as an independent oracle).
pub fn count_matches_scalar<T: CodeWord>(data: &[T], pred: &RangePredicate<T>) -> usize {
    data.iter().filter(|&&v| pred.contains(v)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_all_and_none() {
        let data: Vec<u8> = (0..=255).collect();
        let mut out = Vec::new();
        let n = find_matches_scalar(&data, &RangePredicate::all(), 0, &mut out);
        assert_eq!(n, 256);
        assert_eq!(out.len(), 256);
        out.clear();
        let n = find_matches_scalar(&data, &RangePredicate::empty(), 0, &mut out);
        assert_eq!(n, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn find_respects_base_offset() {
        let data: Vec<u16> = vec![5, 10, 15, 20];
        let mut out = Vec::new();
        find_matches_scalar(&data, &RangePredicate::between(10, 15), 1000, &mut out);
        assert_eq!(out, vec![1001, 1002]);
    }

    #[test]
    fn find_appends_after_existing_content() {
        let data: Vec<u32> = vec![1, 2, 3];
        let mut out = vec![7, 8];
        find_matches_scalar(&data, &RangePredicate::at_least(2), 0, &mut out);
        assert_eq!(out, vec![7, 8, 1, 2]);
    }

    #[test]
    fn reduce_keeps_order_and_filters() {
        let data: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let mut matches: Vec<u32> = (0..100).collect();
        let n = reduce_matches_scalar(&data, &RangePredicate::between(30, 60), 0, &mut matches);
        // values 30..=60 that are multiples of 3: 30,33,...,60 → indices 10..=20
        assert_eq!(n, 11);
        assert_eq!(matches, (10..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn reduce_with_base() {
        let data: Vec<u64> = vec![100, 200, 300];
        let mut matches = vec![50, 51, 52];
        reduce_matches_scalar(&data, &RangePredicate::at_most(200), 50, &mut matches);
        assert_eq!(matches, vec![50, 51]);
    }

    #[test]
    fn reduce_empty_predicate_clears() {
        let data: Vec<u8> = vec![1, 2, 3];
        let mut matches = vec![0, 1, 2];
        let n = reduce_matches_scalar(&data, &RangePredicate::empty(), 0, &mut matches);
        assert_eq!(n, 0);
        assert!(matches.is_empty());
    }

    #[test]
    fn count_is_consistent_with_find() {
        let data: Vec<u16> = (0..10_000).map(|i| (i * 17 % 1024) as u16).collect();
        let pred = RangePredicate::between(100u16, 300);
        let mut out = Vec::new();
        let found = find_matches_scalar(&data, &pred, 0, &mut out);
        assert_eq!(found, count_matches_scalar(&data, &pred));
        for &p in &out {
            assert!(pred.contains(data[p as usize]));
        }
    }
}
