//! The SQL front end pinned end to end: every checked-in TPC-H SQL text
//! (`crates/workloads/queries/sql/*.sql`) must lower to **byte-for-byte** the
//! checked-in IR document (`crates/workloads/queries/*.json`), and running the
//! SQL through the query service ([`Session::sql`]) must produce the same
//! result as the hand-built operator trees — byte-identical at one thread,
//! doubles equal up to reassociation above — across thread counts and cache
//! regimes. Because SQL becomes an IR document first, the plan goldens, the
//! fuzz oracle and `ir_differential` all pin the same artifact.

use data_blocks::datablocks::Value;
use data_blocks::exec::{Batch, ScanConfig};
use data_blocks::query::{parse_sql, to_sql, Connect};
use data_blocks::storage::SpillPolicy;
use data_blocks::workloads::tpch::{query_ir, query_sql, run_query, TpchDb};

const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];
const QUERIES: &[&str] = &["Q1", "Q6", "Q3", "Q12", "Q14"];

fn tpch() -> TpchDb {
    let mut db = TpchDb::generate_with_chunk(0.02, 2_048);
    db.freeze();
    db
}

/// Same comparison contract as `ir_differential`: byte-identity when `exact`,
/// doubles up to reassociation (relative 1e-9) otherwise.
fn assert_batches_agree(label: &str, expected: &Batch, actual: &Batch, exact: bool) {
    assert_eq!(expected.len(), actual.len(), "{label}: row count");
    for row in 0..expected.len() {
        let (e, a) = (expected.row(row), actual.row(row));
        assert_eq!(e.len(), a.len(), "{label} row {row}: column count");
        for (col, (ev, av)) in e.iter().zip(&a).enumerate() {
            match (ev, av) {
                (Value::Double(x), Value::Double(y)) if !exact => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() / scale < 1e-9,
                        "{label} row {row} col {col}: {x} vs {y}"
                    );
                }
                _ => assert_eq!(ev, av, "{label} row {row} col {col}"),
            }
        }
    }
}

/// SQL → IR byte goldens: lowering each checked-in SQL text reproduces the
/// checked-in JSON document exactly (`plan_dump --update` regenerates both).
#[test]
fn sql_lowers_to_checked_in_ir_byte_identically() {
    let db = TpchDb::generate_with_chunk(0.001, 1_024);
    for &name in QUERIES {
        let ir = parse_sql(&db.db, query_sql(name))
            .unwrap_or_else(|err| panic!("lowering {name}: {err}"));
        assert_eq!(
            ir.to_pretty(),
            query_ir(name),
            "{name}: SQL no longer lowers to the checked-in IR document; \
             run `cargo run --bin plan_dump -- --update` and review the diff"
        );
    }
}

/// The canonical SQL printer round-trips the checked-in queries: printing the
/// lowered IR and re-parsing reproduces the same document.
#[test]
fn checked_in_queries_round_trip_through_canonical_sql() {
    let db = TpchDb::generate_with_chunk(0.001, 1_024);
    for &name in QUERIES {
        let ir = parse_sql(&db.db, query_sql(name)).expect("lowering");
        let printed = to_sql(&ir);
        let reparsed = parse_sql(&db.db, &printed).unwrap_or_else(|err| {
            panic!("{name}: canonical SQL does not re-parse: {err}\n{printed}")
        });
        assert_eq!(reparsed.to_pretty(), ir.to_pretty(), "{name}: {printed}");
    }
}

/// SQL through the session API matches the hand-built operator trees across
/// thread counts, in memory.
#[test]
fn sql_matches_hand_built_plans_across_threads() {
    let db = tpch();
    for &name in QUERIES {
        for &threads in THREAD_COUNTS {
            let config = ScanConfig::default().with_threads(threads);
            let expected = run_query(&db, name, config).batch;
            let session = db.db.connect().with_config(config);
            let actual = session
                .sql(query_sql(name))
                .and_then(|stream| stream.collect())
                .unwrap_or_else(|err| panic!("running {name}: {err}"));
            assert!(!actual.is_empty(), "{name} must produce rows");
            assert_batches_agree(
                &format!("{name} threads {threads}"),
                &expected,
                &actual,
                threads == 1,
            );
        }
    }
}

/// SQL through the session API on a thrash-cache spilled database still
/// matches the in-memory hand-built trees, and the pre-compiled plan path
/// (`compile_sql` + `execute_plan`) agrees with the one-shot path.
#[test]
fn sql_matches_across_cache_regimes_and_plan_reuse() {
    let in_memory = tpch();
    let mut spilled = tpch();
    spilled
        .db
        .enable_spill(SpillPolicy::with_cache_capacity(1))
        .expect("enable spill");
    for &name in QUERIES {
        for &threads in &[1usize, 4] {
            let config = ScanConfig::default().with_threads(threads);
            let expected = run_query(&in_memory, name, config).batch;
            let session = spilled.db.connect().with_config(config);
            let actual = session
                .sql(query_sql(name))
                .and_then(|stream| stream.collect())
                .unwrap_or_else(|err| panic!("running {name}: {err}"));
            assert_batches_agree(
                &format!("{name} thrash threads {threads}"),
                &expected,
                &actual,
                threads == 1,
            );
            let plan = session
                .compile_sql(query_sql(name))
                .unwrap_or_else(|err| panic!("compiling {name}: {err}"));
            let reused = session
                .execute_plan(&plan)
                .and_then(|stream| stream.collect())
                .unwrap_or_else(|err| panic!("re-running {name}: {err}"));
            assert_batches_agree(
                &format!("{name} thrash threads {threads} (plan reuse)"),
                &expected,
                &reused,
                threads == 1,
            );
        }
    }
}

/// SQL errors come back positioned (1-based line/column into the SQL text)
/// through the unified service error, with the same taxonomy as the JSON
/// surface.
#[test]
fn sql_errors_are_positioned_through_the_session() {
    let db = tpch();
    let session = db.db.connect();
    let err = session
        .sql("SELECT l_quantity\nFROM lineitme")
        .expect_err("unknown relation");
    assert_eq!(
        err.to_string(),
        "semantic error at line 2, column 6: unknown relation `lineitme`"
    );
    let err = session
        .sql("SELECT sum(l_quantity FROM lineitem")
        .expect_err("missing paren");
    assert!(
        err.to_string()
            .starts_with("syntax error at line 1, column 23"),
        "unexpected rendering: {err}"
    );
}
