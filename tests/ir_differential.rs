//! Differential tests for the JSON-IR query surface: every checked-in TPC-H IR
//! document (`crates/workloads/queries/*.json`) must plan and execute to the
//! same result as the hand-built operator tree in `workloads::tpch::run_query`,
//! across thread counts and storage tiers. At `threads = 1` both paths are fully
//! serial and deterministic, so rows must be **byte-identical**; at higher thread
//! counts the morsel scheduler assigns work dynamically, so parallel double sums
//! are equal up to reassociation (the PR-2 contract) while every other value
//! stays byte-identical.
//!
//! Also covered here: predicate pushdown producing the same answer as scan-level
//! restrictions, and the parser/planner rejecting malformed IR with positioned
//! errors (satellite of the query-surface PR).

use data_blocks::datablocks::Value;
use data_blocks::exec::{Batch, ScanConfig};
use data_blocks::query::{self, parse_ir, IrErrorKind};
use data_blocks::storage::SpillPolicy;
use data_blocks::workloads::tpch::{run_query, run_query_ir, TpchDb};

const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];
const QUERIES: &[&str] = &["Q1", "Q6", "Q3", "Q12", "Q14"];

/// A TPC-H database whose lineitem spans many small blocks, so the morsel
/// scheduler and (when spilled) the block cache both get exercised.
fn tpch() -> TpchDb {
    let mut db = TpchDb::generate_with_chunk(0.02, 2_048);
    db.freeze();
    db
}

/// Compare two result batches. `exact` demands byte-identity for every value;
/// otherwise doubles are compared up to reassociation (relative 1e-9) because
/// the dynamic morsel→worker schedule reassociates parallel floating-point sums.
fn assert_batches_agree(label: &str, expected: &Batch, actual: &Batch, exact: bool) {
    assert_eq!(expected.len(), actual.len(), "{label}: row count");
    for row in 0..expected.len() {
        let (e, a) = (expected.row(row), actual.row(row));
        assert_eq!(e.len(), a.len(), "{label} row {row}: column count");
        for (col, (ev, av)) in e.iter().zip(&a).enumerate() {
            match (ev, av) {
                (Value::Double(x), Value::Double(y)) if !exact => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() / scale < 1e-9,
                        "{label} row {row} col {col}: {x} vs {y}"
                    );
                }
                _ => assert_eq!(ev, av, "{label} row {row} col {col}"),
            }
        }
    }
}

#[test]
fn ir_queries_match_hand_built_plans_across_threads() {
    let db = tpch();
    for &name in QUERIES {
        for &threads in THREAD_COUNTS {
            let config = ScanConfig::default().with_threads(threads);
            let expected = run_query(&db, name, config).batch;
            let actual = run_query_ir(&db, name, config);
            assert!(!actual.is_empty(), "{name} must produce rows");
            assert_batches_agree(
                &format!("{name} threads {threads}"),
                &expected,
                &actual,
                threads == 1,
            );
        }
    }
}

#[test]
fn ir_queries_match_across_cache_regimes() {
    let in_memory = tpch();
    // Cache capacities covering the three regimes: everything resident, partially
    // resident, thrashing.
    for &(regime, capacity) in &[
        ("all_fits", usize::MAX),
        ("half_fits", 256 << 10),
        ("thrash", 1),
    ] {
        let mut spilled = tpch();
        spilled
            .db
            .enable_spill(SpillPolicy::with_cache_capacity(capacity))
            .expect("enable spill");
        for &name in QUERIES {
            for &threads in &[1usize, 4] {
                let config = ScanConfig::default().with_threads(threads);
                let expected = run_query(&in_memory, name, config).batch;
                let actual = run_query_ir(&spilled, name, config);
                assert_batches_agree(
                    &format!("{name} cache {regime} threads {threads}"),
                    &expected,
                    &actual,
                    threads == 1,
                );
            }
        }
    }
}

/// Q6 authored as an explicit `filter` over an unrestricted scan. The planner
/// must push all five sargable conjuncts down into scan restrictions (merging
/// the `ge`/`le` pairs into ranges), drop the filter entirely, and produce the
/// same answer as the checked-in scan-level-predicate form.
const Q6_AS_FILTER: &str = r#"{
  "version": 1,
  "plan": {
    "op": "aggregate",
    "input": {
      "op": "filter",
      "input": {
        "op": "scan",
        "relation": "lineitem",
        "columns": ["l_extendedprice", "l_discount", "l_shipdate", "l_quantity"]
      },
      "predicate": {
        "and": [
          {"ge": [{"col": 2}, {"int": 8766}]},
          {"le": [{"col": 2}, {"int": 9130}]},
          {"ge": [{"col": 1}, {"int": 5}]},
          {"le": [{"col": 1}, {"int": 7}]},
          {"lt": [{"col": 3}, {"int": 24}]}
        ]
      }
    },
    "groups": [],
    "aggregates": [
      {
        "func": "sum",
        "expr": {"div": [{"mul": [{"col": 0}, {"col": 1}]}, {"int": 100}]},
        "type": "double"
      }
    ]
  }
}"#;

#[test]
fn filter_pushdown_is_equivalent_to_scan_level_predicates() {
    let db = tpch();
    let config = ScanConfig::default();
    let plan = query::compile(&db.db, config, Q6_AS_FILTER).expect("Q6-as-filter plans");
    let rendered = format!("{plan}");
    assert!(
        rendered.contains("(pushed)"),
        "all conjuncts are sargable and must be pushed:\n{rendered}"
    );
    assert!(
        !rendered.contains("filter "),
        "a fully-pushed filter must disappear from the plan:\n{rendered}"
    );
    assert!(
        rendered.contains("between 8766 and 9130"),
        "ge/le pairs must merge into ranges:\n{rendered}"
    );

    let pushed = plan.execute(&db.db);
    let reference = run_query_ir(&db, "Q6", config);
    assert_batches_agree("Q6 pushdown equivalence", &reference, &pushed, true);
}

#[test]
fn parser_rejects_malformed_ir_with_positioned_errors() {
    // Unsupported version — schema error anchored to the version value.
    let err =
        parse_ir(r#"{"version": 2, "plan": {"op": "scan", "relation": "t", "columns": ["a"]}}"#)
            .unwrap_err();
    assert_eq!(err.kind, IrErrorKind::Schema);
    assert!(err.to_string().contains("version"), "{err}");
    assert_eq!((err.pos.line, err.pos.col), (1, 13), "{err}");

    // Unknown node kind — schema error naming the bad kind.
    let err =
        parse_ir(r#"{"version": 1, "plan": {"op": "scann", "relation": "t", "columns": ["a"]}}"#)
            .unwrap_err();
    assert_eq!(err.kind, IrErrorKind::Schema);
    assert!(err.to_string().contains("scann"), "{err}");

    // Unknown field — schema error naming the field.
    let err = parse_ir(
        r#"{"version": 1, "plan": {"op": "scan", "relation": "t", "columns": ["a"], "morsels": 4}}"#,
    )
    .unwrap_err();
    assert_eq!(err.kind, IrErrorKind::Schema);
    assert!(err.to_string().contains("morsels"), "{err}");

    // Truncated document — syntax error, not a panic.
    let err = parse_ir(r#"{"version": 1, "plan": {"op": "scan","#).unwrap_err();
    assert_eq!(err.kind, IrErrorKind::Syntax);
    assert!(err.to_string().contains("truncated"), "{err}");
}

#[test]
fn planner_rejects_semantic_errors_with_positions() {
    let db = tpch();
    let config = ScanConfig::default();

    // Unknown relation.
    let err = query::compile(
        &db.db,
        config,
        r#"{"version": 1, "plan": {"op": "scan", "relation": "lineitems", "columns": ["l_orderkey"]}}"#,
    )
    .unwrap_err();
    assert_eq!(err.kind, IrErrorKind::Semantic);
    assert!(err.to_string().contains("lineitems"), "{err}");

    // Comparing a string column against an integer literal.
    let err = query::compile(
        &db.db,
        config,
        r#"{
  "version": 1,
  "plan": {
    "op": "filter",
    "input": {"op": "scan", "relation": "lineitem", "columns": ["l_shipmode"]},
    "predicate": {"eq": [{"col": 0}, {"int": 3}]}
  }
}"#,
    )
    .unwrap_err();
    assert_eq!(err.kind, IrErrorKind::Semantic);
    assert!(
        err.pos.line > 1,
        "position must point into the document: {err}"
    );
}
