//! Crash-recovery stress tests for the durable block store: a spilled TPC-H
//! database must survive a close (or a simulated crash) and reopen from its
//! persisted manifests to **byte-identical** query results — including deletes
//! performed before the crash and a dead-frame compaction cycle — and a torn
//! final manifest record (the bytes a crash leaves mid-append) must be detected
//! and discarded cleanly.
//!
//! CI runs this suite as its dedicated crash-recovery step (release mode), on
//! top of the regular debug run in `cargo test`.

use data_blocks::datablocks::{date_to_days, CmpOp, Restriction, Value};
use data_blocks::exec::{RelationScanner, ScanConfig};
use data_blocks::storage::{Database, Relation, RowId, Segment, SpillPolicy};
use data_blocks::workloads::tpch::{run_query, TpchDb};

const QUERIES: &[&str] = &["Q1", "Q6", "Q3", "Q12", "Q14"];
const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];

/// A TPC-H database whose lineitem spans many small blocks (same shape the
/// spill differential tests use). Generation is deterministic, so two calls
/// produce identical databases — the in-memory reference and the
/// spill-and-reopen subject.
fn tpch() -> TpchDb {
    let mut db = TpchDb::generate_with_chunk(0.02, 2_048);
    db.freeze();
    db
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "datablocks-crash-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn dir_policy(dir: &std::path::Path) -> SpillPolicy {
    SpillPolicy {
        cache_capacity_bytes: 4 << 20,
        path: Some(dir.to_path_buf()),
        // Hold garbage until the test compacts explicitly, so the compaction
        // counters below are deterministic (auto-compaction is exercised by the
        // blockstore unit tests).
        compaction_garbage_ratio: 1.0,
        ..SpillPolicy::default()
    }
}

/// Deterministic delete set: a handful of rows of every 7th lineitem cold
/// block. Applied identically to the reference and the spilled database
/// (generation is deterministic, so the block layout matches).
fn delete_some_lineitem_rows(db: &mut TpchDb) -> usize {
    let lineitem = db.db.relation_mut("lineitem");
    let mut deleted = 0;
    for block in (0..lineitem.cold_block_count()).step_by(7) {
        for row in 0..5 {
            if lineitem.delete(RowId {
                segment: Segment::Cold(block),
                row,
            }) {
                deleted += 1;
            }
        }
    }
    deleted
}

fn assert_queries_match(expected: &TpchDb, actual: &TpchDb, threads: usize, context: &str) {
    for query in QUERIES {
        let config = ScanConfig::default().with_threads(threads);
        let reference = run_query(expected, query, config);
        let result = run_query(actual, query, config);
        assert_eq!(
            reference.batch.len(),
            result.batch.len(),
            "{context}: {query} threads {threads}"
        );
        for row in 0..reference.batch.len() {
            let (e, a) = (reference.batch.row(row), result.batch.row(row));
            for (col, (ev, av)) in e.iter().zip(&a).enumerate() {
                match (ev, av) {
                    // Parallel double sums are an FP reduction (equal up to
                    // reassociation, per the PR-2 contract); all other values
                    // must be byte-identical.
                    (Value::Double(x), Value::Double(y)) => {
                        let scale = x.abs().max(y.abs()).max(1.0);
                        assert!(
                            (x - y).abs() / scale < 1e-9,
                            "{context}: {query} threads {threads} row {row} col {col}: {x} vs {y}"
                        );
                    }
                    _ => assert_eq!(
                        ev, av,
                        "{context}: {query} threads {threads} row {row} col {col}"
                    ),
                }
            }
        }
    }
}

/// Reopen the whole spilled database directory with the schemas of `reference`.
fn reopen_database(reference: &TpchDb, dir: &std::path::Path) -> TpchDb {
    let schemas: Vec<(String, data_blocks::storage::Schema)> = reference
        .db
        .relations()
        .map(|rel| (rel.name().to_string(), rel.schema().clone()))
        .collect();
    let db = Database::open_spilled(dir_policy(dir), schemas).expect("reopen spilled database");
    TpchDb {
        db,
        scale_factor: reference.scale_factor,
    }
}

/// The end-to-end crash-recovery contract: spill, delete, compact, close,
/// reopen — Q1/Q3/Q6/Q12/Q14 byte-identical to the in-memory run, across
/// threads {1, 2, 4, 8}.
#[test]
fn reopened_database_matches_in_memory_after_deletes_and_compaction() {
    let mut reference = tpch();
    let dir = unique_dir("roundtrip");
    {
        let mut spilled = tpch();
        spilled
            .db
            .enable_spill(dir_policy(&dir))
            .expect("enable spill");
        // identical deletes on both sides, through the spill store on one
        let deleted_spilled = delete_some_lineitem_rows(&mut spilled);
        let deleted_reference = delete_some_lineitem_rows(&mut reference);
        assert_eq!(deleted_spilled, deleted_reference);
        assert!(deleted_spilled > 0, "the delete set must not be empty");
        // force a full dead-frame compaction cycle before the close
        let store = spilled.db.relation("lineitem").spill_store().unwrap();
        assert!(store.dead_bytes() > 0, "deletes must have created garbage");
        store.compact().expect("compact lineitem store");
        assert_eq!(store.stats().compactions, 1);
        assert_eq!(store.dead_bytes(), 0);
        assert_queries_match(&reference, &spilled, 1, "pre-close sanity");
    } // drop = clean close: every store checkpoints its manifest

    let reopened = reopen_database(&reference, &dir);
    let lineitem = reopened.db.relation("lineitem");
    assert_eq!(
        lineitem.live_row_count(),
        reference.db.relation("lineitem").live_row_count(),
        "tombstones survived close + reopen"
    );
    // the directory was rebuilt from the manifest, not from block payloads —
    // and the compacted store reopened onto its new generation file
    let store = lineitem.spill_store().unwrap();
    assert_eq!(store.dead_bytes(), 0, "compaction survived the reopen");
    for &threads in THREAD_COUNTS {
        assert_queries_match(&reference, &reopened, threads, "after reopen");
    }
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under `Durability::Sync { group_commit: 1 }` every acknowledged operation
/// is on stable storage before the call returns. Simulate a power cut after
/// each acknowledgement by copying the data file plus the manifest *truncated
/// to the length it had at that ack*: every prefix image must reopen to
/// exactly the acked state — no acknowledged write lost, no unacked write
/// required.
#[test]
fn synced_prefix_reopens_to_exactly_the_acked_state() {
    use data_blocks::datablocks::builder::{freeze, int_column};
    use data_blocks::storage::{BlockStore, Durability};
    use std::sync::Arc;

    let dir = unique_dir("syncprefix");
    let path = dir.join("store.dbs");
    let manifest = dir.join("store.dbs.manifest");
    let block = |tag: i64| {
        Arc::new(freeze(&[int_column(
            (0..128).map(|i| tag * 1000 + i).collect(),
        )]))
    };

    // (manifest length at ack, expected (tag, row0_deleted) per block id)
    let mut cuts: Vec<(u64, Vec<(i64, bool)>)> = Vec::new();
    {
        let store = BlockStore::create_opts(
            &path,
            usize::MAX,
            Durability::Sync { group_commit: 1 },
            None,
        )
        .expect("create store");
        // keep everything in generation 0 so each crash image is two files
        store.set_garbage_threshold(1.0);
        let mut state: Vec<(i64, bool)> = Vec::new();
        type Op<'a> = Box<dyn FnMut(&Arc<BlockStore>, &mut Vec<(i64, bool)>) + 'a>;
        let mut ops: Vec<Op<'_>> = vec![
            Box::new(|s, m| {
                s.append(block(m.len() as i64)).expect("append");
                m.push((m.len() as i64, false));
            }),
            Box::new(|s, m| {
                s.append(block(m.len() as i64)).expect("append");
                m.push((m.len() as i64, false));
            }),
            Box::new(|s, m| {
                s.mutate(0, |b| {
                    let mut updated = b.clone();
                    updated.delete(0);
                    (Some(updated), ())
                })
                .expect("mutate");
                m[0].1 = true;
            }),
            Box::new(|s, m| {
                s.append(block(m.len() as i64)).expect("append");
                m.push((m.len() as i64, false));
            }),
        ];
        for op in &mut ops {
            op(&store, &mut state);
            // the ack is durable: snapshot the crash image while the store
            // is live (no clean-close checkpoint has rewritten the log)
            let len = std::fs::metadata(&manifest).expect("manifest").len();
            cuts.push((len, state.clone()));
            let k = cuts.len() - 1;
            std::fs::copy(&path, dir.join(format!("cut{k}.dbs"))).expect("copy data");
            std::fs::copy(&manifest, dir.join(format!("cut{k}.dbs.manifest")))
                .expect("copy manifest");
            let img = std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(format!("cut{k}.dbs.manifest")))
                .expect("open manifest image");
            img.set_len(len)
                .expect("truncate manifest image to the ack");
        }
    }
    assert_eq!(cuts.len(), 4);
    for (k, (_, expected)) in cuts.iter().enumerate() {
        let store = BlockStore::reopen(dir.join(format!("cut{k}.dbs")), usize::MAX)
            .unwrap_or_else(|err| panic!("reopen synced prefix {k}: {err}"));
        assert_eq!(
            store.block_count(),
            expected.len(),
            "prefix {k}: exactly the acked directory"
        );
        for (id, &(tag, row0_deleted)) in expected.iter().enumerate() {
            let pinned = store
                .pin(id)
                .unwrap_or_else(|err| panic!("prefix {k}: acked block {id} unreadable: {err}"));
            assert_eq!(
                pinned.get(1, 0),
                data_blocks::datablocks::Value::Int(tag * 1000 + 1),
                "prefix {k} block {id}"
            );
            assert_eq!(
                pinned.is_deleted(0),
                row0_deleted,
                "prefix {k} block {id} tombstone"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded randomized torn-write fuzz over the manifest: cut the log at an
/// arbitrary point (and sometimes flip a byte inside the kept prefix), reopen,
/// and require **Ok with every block decoding cleanly, or a loud error —
/// never a panic, never silently wrong data**. Both manifest shapes are
/// fuzzed: the incremental Put log of a crashed store and the snapshot a
/// clean close checkpoints.
#[test]
fn randomized_manifest_torn_writes_reopen_or_fail_loudly() {
    use data_blocks::datablocks::builder::{freeze, int_column};
    use data_blocks::storage::{BlockStore, FaultInjector};
    use std::sync::Arc;

    let dir = unique_dir("tornfuzz");
    let path = dir.join("store.dbs");
    let manifest = dir.join("store.dbs.manifest");
    let dirty_data = dir.join("dirty.bin");
    let dirty_manifest = dir.join("dirty.manifest");
    let block = |tag: i64| {
        Arc::new(freeze(&[int_column(
            (0..128).map(|i| tag * 1000 + i).collect(),
        )]))
    };
    {
        let store = BlockStore::create(&path, usize::MAX).expect("create store");
        store.set_garbage_threshold(1.0);
        for tag in 0..4 {
            store.append(block(tag)).expect("append");
        }
        store
            .mutate(1, |b| {
                let mut updated = b.clone();
                updated.delete(3);
                (Some(updated), ())
            })
            .expect("mutate");
        // dirty image: incremental log, taken while live (= crash)
        std::fs::copy(&path, &dirty_data).expect("copy data");
        std::fs::copy(&manifest, &dirty_manifest).expect("copy manifest");
    } // clean close: `path` now carries a checkpointed snapshot manifest
    let images = [
        ("dirty", &dirty_data, &dirty_manifest),
        ("clean", &path, &manifest),
    ];

    let rng = FaultInjector::new(0x5EED_CAFE);
    let mut reopened_ok = 0usize;
    for round in 0..24 {
        let (shape, data, mani) = images[round % 2];
        let len = std::fs::metadata(mani).expect("manifest").len();
        let cut = 1 + rng.next_u64() % len;
        let target = dir.join(format!("round{round}.dbs"));
        std::fs::copy(data, &target).expect("copy data");
        std::fs::copy(mani, dir.join(format!("round{round}.dbs.manifest"))).expect("copy manifest");
        {
            let img = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(dir.join(format!("round{round}.dbs.manifest")))
                .expect("open manifest image");
            img.set_len(cut).expect("tear the manifest");
            if rng.next_u64().is_multiple_of(2) && cut > 1 {
                use std::os::unix::fs::FileExt as _;
                let poke = rng.next_u64() % cut;
                let mut byte = [0u8];
                img.read_exact_at(&mut byte, poke).expect("read byte");
                byte[0] ^= 1 << (rng.next_u64() % 8);
                img.write_all_at(&byte, poke).expect("flip byte");
            }
        }
        match BlockStore::reopen(&target, usize::MAX) {
            Ok(store) => {
                reopened_ok += 1;
                for id in 0..store.block_count() {
                    let pinned = store.pin(id).unwrap_or_else(|err| {
                        panic!("round {round} ({shape}): directory served unreadable block {id}: {err}")
                    });
                    let tag = match pinned.get(0, 0) {
                        data_blocks::datablocks::Value::Int(v) => v / 1000,
                        other => panic!("round {round}: row 0 decoded to {other:?}"),
                    };
                    assert!(
                        (0..4).contains(&tag),
                        "round {round} ({shape}): block {id} carries impossible tag {tag}"
                    );
                    assert_eq!(
                        pinned.get(5, 0),
                        data_blocks::datablocks::Value::Int(tag * 1000 + 5),
                        "round {round} ({shape}): block {id} internally inconsistent"
                    );
                }
            }
            // a cut inside a checkpoint's declared entry set (or a flipped
            // checksum) is unrecoverable corruption: failing loudly is the
            // contract — only a panic or silent wrongness would be a bug
            Err(err) => {
                let _ = format!("{err}");
            }
        }
    }
    assert!(
        reopened_ok > 0,
        "fuzz never produced a recoverable image; the matrix is vacuous"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Durability is invisible to queries: the same TPC-H database spilled under
/// `Durability::Sync` answers Q1/Q3/Q6/Q12/Q14 byte-identically to the
/// in-memory reference (and therefore to the `Buffered` run of the roundtrip
/// test) across threads {1, 2, 4, 8}, before and after a close + reopen.
#[test]
fn sync_durability_answers_byte_identically_across_threads() {
    use data_blocks::storage::Durability;

    let reference = tpch();
    let dir = unique_dir("syncmode");
    let sync_policy = SpillPolicy {
        durability: Durability::Sync { group_commit: 8 },
        ..dir_policy(&dir)
    };
    {
        let mut spilled = tpch();
        spilled
            .db
            .enable_spill(sync_policy.clone())
            .expect("enable spill under Sync");
        for &threads in THREAD_COUNTS {
            assert_queries_match(&reference, &spilled, threads, "sync durability");
        }
    } // clean close: checkpoint through the Sync commit point
    let schemas: Vec<(String, data_blocks::storage::Schema)> = reference
        .db
        .relations()
        .map(|rel| (rel.name().to_string(), rel.schema().clone()))
        .collect();
    let db = Database::open_spilled(sync_policy, schemas).expect("reopen under Sync");
    let reopened = TpchDb {
        db,
        scale_factor: reference.scale_factor,
    };
    assert_queries_match(&reference, &reopened, 4, "sync durability after reopen");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash mid-manifest-append leaves a torn final record after the valid log.
/// Reopen must detect it (length/checksum), discard it, truncate the manifest
/// back to its valid prefix, and still re-verify Q1/Q6 exactly. (A cut *inside*
/// the clean-close checkpoint is different, deliberately: fewer entries than
/// the checkpoint declared is unrecoverable corruption and fails loudly — the
/// blockstore unit tests pin that down.)
#[test]
fn torn_final_manifest_record_is_discarded_on_reopen() {
    use data_blocks::datablocks::builder::{freeze, int_column};
    use data_blocks::datablocks::frame::{manifest_record_to_bytes, ManifestRecord};
    use data_blocks::datablocks::BlockSummary;

    let reference = tpch();
    let dir = unique_dir("torn");
    {
        let mut spilled = tpch();
        spilled
            .db
            .enable_spill(dir_policy(&dir))
            .expect("enable spill");
    }
    // Simulate a crash mid-append of one more directory mutation: tack the
    // first half of a real record's bytes onto the checkpointed log.
    let manifest = dir.join("lineitem.dbs.manifest");
    let clean_len = std::fs::metadata(&manifest).expect("manifest exists").len();
    let summary = BlockSummary::of(&freeze(&[int_column((0..64).collect())]));
    let record = manifest_record_to_bytes(&ManifestRecord::Put {
        block_id: 0,
        generation: 0,
        offset: 0,
        len: 999,
        summary,
    });
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&manifest)
            .expect("open manifest for torn append");
        file.write_all(&record[..record.len() / 2])
            .expect("append torn record");
    }

    let reopened = reopen_database(&reference, &dir);
    assert_eq!(
        std::fs::metadata(&manifest).expect("manifest kept").len(),
        clean_len,
        "manifest truncated back to its valid prefix"
    );
    for query in ["Q1", "Q6"] {
        let config = ScanConfig::default();
        let expected = run_query(&reference, query, config);
        let actual = run_query(&reopened, query, config);
        assert_eq!(expected.batch.len(), actual.batch.len(), "{query}");
        for row in 0..expected.batch.len() {
            for (ev, av) in expected.batch.row(row).iter().zip(actual.batch.row(row)) {
                match (ev, &av) {
                    (Value::Double(x), Value::Double(y)) => {
                        assert!((x - y).abs() / x.abs().max(1.0) < 1e-9, "{query} row {row}")
                    }
                    _ => assert_eq!(*ev, av, "{query} row {row}"),
                }
            }
        }
    }
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash that never reaches the clean-close checkpoint leaves only the
/// incremental Put log. A byte-level copy of the store files taken while the
/// store is open is exactly that crash image; reopening it must replay the log
/// — including a delete's rewrite (duplicate block id, last-writer-wins) — to
/// the same scan results as the live relation.
#[test]
fn crash_image_without_checkpoint_replays_incremental_log() {
    let db = tpch();
    let dir = unique_dir("image");
    let live_path = dir.join("lineitem.dbs");
    let image_path = dir.join("lineitem-image.dbs");

    let mut lineitem = db.db.relation("lineitem").clone();
    lineitem
        .enable_spill(&SpillPolicy {
            cache_capacity_bytes: 4 << 20,
            path: Some(live_path.clone()),
            ..SpillPolicy::default()
        })
        .expect("enable spill");
    // a few deletes → rewrites → duplicate block ids in the incremental log
    for block in 0..3 {
        assert!(lineitem.delete(RowId {
            segment: Segment::Cold(block),
            row: 1,
        }));
    }
    // crash image: copy data + manifest while the store is live (no checkpoint)
    std::fs::copy(&live_path, &image_path).expect("copy data file");
    std::fs::copy(
        dir.join("lineitem.dbs.manifest"),
        dir.join("lineitem-image.dbs.manifest"),
    )
    .expect("copy manifest");

    let s = lineitem.schema();
    let restrictions = vec![
        Restriction::between(
            s.idx("l_shipdate"),
            date_to_days(1994, 1, 1),
            date_to_days(1995, 1, 1) - 1,
        ),
        Restriction::cmp(s.idx("l_quantity"), CmpOp::Lt, 24i64),
    ];
    let projection = vec![s.idx("l_orderkey"), s.idx("l_extendedprice")];
    let scan = |rel: &Relation, threads: usize| -> Vec<Vec<Value>> {
        let mut scanner = RelationScanner::new(
            rel,
            projection.clone(),
            restrictions.clone(),
            ScanConfig::default().with_threads(threads),
        );
        let batch = scanner.collect_all();
        (0..batch.len()).map(|row| batch.row(row)).collect()
    };
    let expected = scan(&lineitem, 1);

    let recovered = Relation::reopen_spilled(
        "lineitem",
        lineitem.schema().clone(),
        &SpillPolicy {
            cache_capacity_bytes: 4 << 20,
            path: Some(image_path),
            ..SpillPolicy::default()
        },
    )
    .expect("reopen crash image");
    assert_eq!(recovered.live_row_count(), lineitem.live_row_count());
    for &threads in THREAD_COUNTS {
        assert_eq!(
            scan(&recovered, threads),
            expected,
            "crash image scan, threads {threads}"
        );
    }
    drop(recovered);
    drop(lineitem);
    let _ = std::fs::remove_dir_all(&dir);
}
