//! Differential tests for the morsel-parallel pipeline breakers: partitioned hash
//! aggregation and the parallel hash-join build must produce results identical to
//! their serial counterparts for every thread count — on skewed group keys, NULL
//! groups/keys, mixed hot/cold storage and inputs that leave most radix partitions
//! empty. Order-insensitive aggregates (count, min, max, integer sums) are compared
//! **byte-identically**; double sums get a relative-epsilon comparison because a
//! parallel reduction legitimately reassociates floating-point addition.

use data_blocks::datablocks::{CmpOp, DataType, Restriction, Value};
use data_blocks::exec::{
    collect_operator, AggFunc, AggSpec, Batch, Expr, HashAggregateOp, HashJoinOp, JoinType,
    ParallelHashAggregateOp, PipelineSpec, RelationScanner, ScanConfig, ScanOp, ValuesOp,
};
use data_blocks::storage::{ColumnDef, Relation, Schema};

const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];
const MORSEL_SIZES: &[usize] = &[128, 1_000];

/// A relation with a heavily skewed string group column (~80 % of rows fall into
/// one group, the rest spread over a long tail), a nullable int group column
/// (NULL groups must aggregate like any other key), and int/double payloads.
/// `freeze_full_chunks` leaves mixed cold blocks + a hot tail.
fn skewed_relation(rows: usize, chunk: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int),
        ColumnDef::new("grp", DataType::Str),
        ColumnDef::nullable("maybe", DataType::Int),
        ColumnDef::new("val", DataType::Int),
        ColumnDef::new("price", DataType::Double),
    ]);
    let mut rel = Relation::with_chunk_capacity("skewed", schema, chunk);
    for i in 0..rows {
        // deterministic skew: 4 of 5 rows hit the hot group
        let grp = if i % 5 != 0 {
            "hot".to_string()
        } else {
            format!("tail{}", i % 31)
        };
        let maybe = if i % 7 == 0 {
            Value::Null
        } else {
            Value::Int((i % 3) as i64)
        };
        rel.insert(vec![
            Value::Int(i as i64),
            Value::Str(grp),
            maybe,
            Value::Int((i * i % 1_000) as i64),
            Value::Double((i % 997) as f64 * 0.25),
        ]);
    }
    rel.freeze_full_chunks();
    rel
}

/// Aggregates whose results are order-insensitive and therefore must match the
/// serial operator byte for byte. Input columns: 0 id, 1 grp, 2 maybe, 3 val.
fn int_aggregates() -> Vec<AggSpec> {
    vec![
        AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
        AggSpec::new(AggFunc::Count, Expr::col(2), DataType::Int),
        AggSpec::new(AggFunc::Sum, Expr::col(3), DataType::Int),
        AggSpec::new(AggFunc::Min, Expr::col(3), DataType::Int),
        AggSpec::new(AggFunc::Max, Expr::col(3), DataType::Int),
        AggSpec::new(AggFunc::Avg, Expr::col(3), DataType::Double),
    ]
}

fn assert_identical(a: &Batch, b: &Batch, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: row counts differ");
    for row in 0..a.len() {
        assert_eq!(a.row(row), b.row(row), "{context} row {row}");
    }
}

fn serial_agg(
    rel: &Relation,
    projection: Vec<usize>,
    restrictions: Vec<Restriction>,
    group_exprs: Vec<Expr>,
    group_types: Vec<DataType>,
    aggregates: Vec<AggSpec>,
) -> Batch {
    let scanner = RelationScanner::new(rel, projection, restrictions, ScanConfig::default());
    let mut agg = HashAggregateOp::new(
        Box::new(ScanOp::new(scanner)),
        group_exprs,
        group_types,
        aggregates,
    );
    collect_operator(&mut agg)
}

/// Parallel partitioned aggregation reproduces the serial operator byte for byte on
/// skewed and NULL-bearing group keys, for every thread count and morsel size.
#[test]
fn parallel_agg_matches_serial_on_skewed_and_null_groups() {
    let rel = skewed_relation(6_400, 1_000);
    let projection = vec![0usize, 1, 2, 3];
    let group_exprs = vec![Expr::col(1), Expr::col(2)];
    let group_types = vec![DataType::Str, DataType::Int];
    let expected = serial_agg(
        &rel,
        projection.clone(),
        vec![],
        group_exprs.clone(),
        group_types.clone(),
        int_aggregates(),
    );
    assert!(expected.len() > 30, "skew + NULL tail yields many groups");
    for &threads in THREAD_COUNTS {
        for &morsel_rows in MORSEL_SIZES {
            let config = ScanConfig::default()
                .with_threads(threads)
                .with_morsel_rows(morsel_rows);
            let spec = PipelineSpec::scan(projection.clone(), vec![], config);
            let mut agg = ParallelHashAggregateOp::over_relation(
                &rel,
                spec,
                group_exprs.clone(),
                group_types.clone(),
                int_aggregates(),
            );
            let got = collect_operator(&mut agg);
            assert_identical(
                &got,
                &expected,
                &format!("threads {threads} morsel_rows {morsel_rows}"),
            );
        }
    }
}

/// The per-morsel operator chain (scan → filter → project → aggregate build) agrees
/// with the equivalent serial operator pipeline.
#[test]
fn pipelined_filter_and_project_match_serial_operators() {
    use data_blocks::exec::{FilterOp, ProjectOp};
    let rel = skewed_relation(4_000, 900);
    let predicate = Expr::col(3).cmp(CmpOp::Ge, Expr::lit(100i64));
    let project_exprs = vec![Expr::col(1), Expr::col(3).mul(Expr::lit(2i64))];
    let project_types = vec![DataType::Str, DataType::Int];
    let aggregates = vec![
        AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
        AggSpec::new(AggFunc::Sum, Expr::col(1), DataType::Int),
    ];

    let scanner = RelationScanner::new(&rel, vec![0, 1, 2, 3], vec![], ScanConfig::default());
    let filtered = FilterOp::new(Box::new(ScanOp::new(scanner)), predicate.clone());
    let projected = ProjectOp::new(
        Box::new(filtered),
        project_exprs.clone(),
        project_types.clone(),
    );
    let mut serial = HashAggregateOp::new(
        Box::new(projected),
        vec![Expr::col(0)],
        vec![DataType::Str],
        aggregates.clone(),
    );
    let expected = collect_operator(&mut serial);

    for &threads in THREAD_COUNTS {
        let config = ScanConfig::default().with_threads(threads);
        let spec = PipelineSpec::scan(vec![0, 1, 2, 3], vec![], config)
            .then_filter(predicate.clone())
            .then_project(project_exprs.clone(), project_types.clone());
        assert_eq!(spec.output_types(&rel), project_types);
        let mut agg = ParallelHashAggregateOp::over_relation(
            &rel,
            spec,
            vec![Expr::col(0)],
            vec![DataType::Str],
            aggregates.clone(),
        );
        let got = collect_operator(&mut agg);
        assert_identical(&got, &expected, &format!("threads {threads}"));
    }
}

/// Double sums are a parallel floating-point reduction: equal up to reassociation.
#[test]
fn parallel_double_sums_match_serial_within_epsilon() {
    let rel = skewed_relation(5_000, 1_000);
    let projection = vec![0usize, 1, 2, 3, 4];
    let aggregates = vec![
        AggSpec::new(AggFunc::Sum, Expr::col(4), DataType::Double),
        AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
    ];
    let expected = serial_agg(
        &rel,
        projection.clone(),
        vec![],
        vec![Expr::col(1)],
        vec![DataType::Str],
        aggregates.clone(),
    );
    for &threads in THREAD_COUNTS {
        let config = ScanConfig::default()
            .with_threads(threads)
            .with_morsel_rows(500);
        let spec = PipelineSpec::scan(projection.clone(), vec![], config);
        let mut agg = ParallelHashAggregateOp::over_relation(
            &rel,
            spec,
            vec![Expr::col(1)],
            vec![DataType::Str],
            aggregates.clone(),
        );
        let got = collect_operator(&mut agg);
        assert_eq!(got.len(), expected.len());
        for row in 0..expected.len() {
            // group key and count: byte-identical
            assert_eq!(got.value(row, 0), expected.value(row, 0));
            assert_eq!(got.value(row, 2), expected.value(row, 2));
            let (a, b) = (
                got.value(row, 1).as_double().unwrap(),
                expected.value(row, 1).as_double().unwrap(),
            );
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!(
                (a - b).abs() / scale < 1e-9,
                "threads {threads} row {row}: {a} vs {b}"
            );
        }
    }
}

/// Empty inputs and single-group inputs (63 of 64 radix partitions empty) behave
/// exactly like the serial operator.
#[test]
fn parallel_agg_handles_empty_and_single_partition_inputs() {
    // empty relation → no groups, zero-row output
    let empty = skewed_relation(0, 100);
    let spec = PipelineSpec::scan(
        vec![0, 1, 2, 3],
        vec![],
        ScanConfig::default().with_threads(4),
    );
    let mut agg = ParallelHashAggregateOp::over_relation(
        &empty,
        spec,
        vec![Expr::col(1)],
        vec![DataType::Str],
        int_aggregates(),
    );
    assert_eq!(collect_operator(&mut agg).len(), 0);

    // restriction matches nothing → same
    let rel = skewed_relation(2_000, 500);
    let spec = PipelineSpec::scan(
        vec![0, 1, 2, 3],
        vec![Restriction::cmp(0, CmpOp::Lt, -1i64)],
        ScanConfig::default().with_threads(4),
    );
    let mut agg = ParallelHashAggregateOp::over_relation(
        &rel,
        spec,
        vec![Expr::col(1)],
        vec![DataType::Str],
        int_aggregates(),
    );
    assert_eq!(collect_operator(&mut agg).len(), 0);

    // constant group key → every row in one radix partition, the rest empty
    let expected = serial_agg(
        &rel,
        vec![0, 1, 2, 3],
        vec![],
        vec![Expr::lit("all")],
        vec![DataType::Str],
        int_aggregates(),
    );
    assert_eq!(expected.len(), 1);
    for &threads in THREAD_COUNTS {
        let spec = PipelineSpec::scan(
            vec![0, 1, 2, 3],
            vec![],
            ScanConfig::default().with_threads(threads),
        );
        let mut agg = ParallelHashAggregateOp::over_relation(
            &rel,
            spec,
            vec![Expr::lit("all")],
            vec![DataType::Str],
            int_aggregates(),
        );
        let got = collect_operator(&mut agg);
        assert_identical(&got, &expected, &format!("threads {threads}"));
    }
}

/// A build relation with skewed duplicate keys and NULL keys, scanned and built in
/// parallel, joins byte-identically to the fully serial plan — inner and semi, with
/// and without the early-probe filter.
#[test]
fn parallel_join_build_matches_serial_join() {
    // build: key skew (key 1 carries most rows) + NULL keys
    let build_schema = Schema::new(vec![
        ColumnDef::nullable("k", DataType::Int),
        ColumnDef::new("payload", DataType::Str),
    ]);
    let mut build_rel = Relation::with_chunk_capacity("build", build_schema, 300);
    for i in 0..1_500usize {
        let key = match i % 10 {
            0 => Value::Null,
            1..=6 => Value::Int(1), // skew
            _ => Value::Int((i % 40) as i64),
        };
        build_rel.insert(vec![key, Value::Str(format!("p{i}"))]);
    }
    build_rel.freeze_full_chunks();

    // probe: ids with a key column overlapping the build keys (and NULLs)
    let probe_schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int),
        ColumnDef::nullable("k", DataType::Int),
    ]);
    let mut probe_rel = Relation::with_chunk_capacity("probe", probe_schema, 400);
    for i in 0..2_000usize {
        let key = if i % 13 == 0 {
            Value::Null
        } else {
            Value::Int((i % 50) as i64)
        };
        probe_rel.insert(vec![Value::Int(i as i64), key]);
    }
    probe_rel.freeze_full_chunks();

    for join_type in [JoinType::Inner, JoinType::ProbeSemi] {
        for early_probe in [false, true] {
            let serial = {
                let build =
                    RelationScanner::new(&build_rel, vec![0, 1], vec![], ScanConfig::default());
                let probe =
                    RelationScanner::new(&probe_rel, vec![0, 1], vec![], ScanConfig::default());
                let mut join = HashJoinOp::new(
                    Box::new(ScanOp::new(build)),
                    Box::new(ScanOp::new(probe)),
                    vec![0],
                    vec![1],
                    join_type,
                )
                .with_early_probe(early_probe);
                collect_operator(&mut join)
            };
            assert!(!serial.is_empty(), "{join_type:?}: join must produce rows");
            for &threads in THREAD_COUNTS {
                let config = ScanConfig::default()
                    .with_threads(threads)
                    .with_morsel_rows(256);
                let build = RelationScanner::new(&build_rel, vec![0, 1], vec![], config);
                let probe =
                    RelationScanner::new(&probe_rel, vec![0, 1], vec![], ScanConfig::default());
                let mut join = HashJoinOp::new(
                    Box::new(ScanOp::new(build)),
                    Box::new(ScanOp::new(probe)),
                    vec![0],
                    vec![1],
                    join_type,
                )
                .with_early_probe(early_probe)
                .with_parallel_build(threads);
                let got = collect_operator(&mut join);
                assert_identical(
                    &got,
                    &serial,
                    &format!("{join_type:?} early_probe={early_probe} threads {threads}"),
                );
            }
        }
    }
}

/// An empty build side produces an empty join for every thread count.
#[test]
fn parallel_join_with_empty_build_side() {
    let probe = Batch::from_rows(
        &[DataType::Int],
        &(0..50).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
    );
    for &threads in THREAD_COUNTS {
        let empty_build = Batch::new(&[DataType::Int]);
        let mut join = HashJoinOp::new(
            Box::new(ValuesOp::new(empty_build)),
            Box::new(ValuesOp::new(probe.clone())),
            vec![0],
            vec![0],
            JoinType::Inner,
        )
        .with_parallel_build(threads);
        assert_eq!(collect_operator(&mut join).len(), 0, "threads {threads}");
    }
}
