//! Differential tests for the larger-than-memory block store: scans, aggregations
//! and OLTP over a relation whose frozen blocks live on secondary storage must be
//! **byte-identical** to the all-in-memory relation — for every cache capacity
//! (everything fits / half fits / cache-thrashing) and every thread count — with
//! SMA pruning answering from the in-memory block directory so that pruned cold
//! blocks are never read from disk (asserted on the store's I/O counters).

use data_blocks::datablocks::{date_to_days, CmpOp, Restriction, Value};
use data_blocks::exec::{drive_streaming, RelationScanner, ScanConfig};
use data_blocks::storage::{Relation, SpillPolicy};
use data_blocks::workloads::tpch::{run_query, TpchDb};

const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];

/// A TPC-H database whose lineitem spans many small blocks, so cache pressure and
/// block skipping are both exercised.
fn tpch() -> TpchDb {
    let mut db = TpchDb::generate_with_chunk(0.02, 2_048);
    db.freeze();
    db
}

/// The Q6 restriction set (selective; SMAs cannot prune it because l_shipdate is
/// spread over every block).
fn q6_restrictions(rel: &Relation) -> Vec<Restriction> {
    let s = rel.schema();
    vec![
        Restriction::between(
            s.idx("l_shipdate"),
            date_to_days(1994, 1, 1),
            date_to_days(1995, 1, 1) - 1,
        ),
        Restriction::between(s.idx("l_discount"), 5i64, 7i64),
        Restriction::cmp(s.idx("l_quantity"), CmpOp::Lt, 24i64),
    ]
}

fn scan_rows(rel: &Relation, restrictions: &[Restriction], config: ScanConfig) -> Vec<Vec<Value>> {
    let s = rel.schema();
    let projection = vec![s.idx("l_orderkey"), s.idx("l_extendedprice")];
    let mut scanner = RelationScanner::new(rel, projection, restrictions.to_vec(), config);
    let batch = scanner.collect_all();
    (0..batch.len()).map(|row| batch.row(row)).collect()
}

/// Cache capacities covering the three interesting regimes for a relation with
/// `cold_bytes` of frozen data: everything resident, half resident, thrashing.
fn cache_configs(cold_bytes: usize) -> Vec<(&'static str, usize)> {
    vec![
        ("all_fits", usize::MAX),
        ("half_fits", cold_bytes / 2),
        ("thrash", 1),
    ]
}

#[test]
fn tpch_scan_byte_identical_across_cache_configs_and_threads() {
    let db = tpch();
    let lineitem = db.relation("lineitem");
    assert!(lineitem.cold_block_count() >= 8, "need many blocks");
    let restrictions = q6_restrictions(lineitem);
    let reference = scan_rows(lineitem, &restrictions, ScanConfig::default());
    assert!(!reference.is_empty());
    let reference_stats = {
        let mut scanner = RelationScanner::new(
            lineitem,
            vec![0],
            restrictions.clone(),
            ScanConfig::default(),
        );
        scanner.collect_all();
        scanner.stats()
    };

    let cold_bytes = lineitem.storage_stats().cold_bytes;
    for (name, capacity) in cache_configs(cold_bytes) {
        // Spilling a clone leaves the original untouched; resident blocks are
        // shared via Arc, so the clone is cheap.
        let mut spilled = lineitem.clone();
        spilled
            .enable_spill(&SpillPolicy::with_cache_capacity(capacity))
            .expect("enable spill");
        let store = spilled.spill_store().expect("store attached").clone();
        assert_eq!(store.block_count(), lineitem.cold_block_count());

        for &threads in THREAD_COUNTS {
            store.clear_cache();
            let config = ScanConfig::default().with_threads(threads);
            let rows = scan_rows(&spilled, &restrictions, config);
            assert_eq!(
                rows, reference,
                "cache {name} threads {threads}: rows must be byte-identical"
            );
            // scan statistics (blocks examined/skipped, rows scanned/matched) are
            // independent of the storage tier and the cache capacity
            let mut scanner = RelationScanner::new(&spilled, vec![0], restrictions.clone(), config);
            scanner.collect_all();
            assert_eq!(
                scanner.stats(),
                reference_stats,
                "cache {name} threads {threads}"
            );
        }
    }
}

/// The streaming scan (tentpole of the bounded-memory pipeline) against all four
/// cache regimes — {memory, all-fits, half-fits, thrash} × threads {1, 2, 4, 8} —
/// with a tight channel: rows byte-identical to the in-memory serial reference,
/// in-flight batches never past the bound, and `block_reads` exact under
/// incremental per-morsel pin release (each non-pruned cold block is pinned once
/// and read exactly once per scan; Q6 restrictions prune nothing here, so every
/// block is read).
#[test]
fn streaming_scan_byte_identical_across_cache_configs_with_exact_reads() {
    let db = tpch();
    let lineitem = db.relation("lineitem");
    let restrictions = q6_restrictions(lineitem);
    let s = lineitem.schema();
    let projection = vec![s.idx("l_orderkey"), s.idx("l_extendedprice")];
    let reference = scan_rows(lineitem, &restrictions, ScanConfig::default());
    let blocks = lineitem.cold_block_count();
    let cap = 2usize;

    // "memory" regime: no store attached, streaming straight off the heap.
    for &threads in THREAD_COUNTS {
        let config = ScanConfig::default()
            .with_threads(threads)
            .with_channel_cap(cap);
        let mut stream = drive_streaming(
            lineitem.scan_snapshot(),
            projection.clone(),
            restrictions.clone(),
            config,
        );
        let mut rows = Vec::new();
        while let Some(batch) = stream.next_batch() {
            for row in 0..batch.len() {
                rows.push(batch.row(row));
            }
        }
        assert_eq!(rows, reference, "memory threads {threads}");
        assert!(stream.max_in_flight() <= cap, "memory threads {threads}");
    }

    let cold_bytes = lineitem.storage_stats().cold_bytes;
    for (name, capacity) in cache_configs(cold_bytes) {
        let mut spilled = lineitem.clone();
        spilled
            .enable_spill(&SpillPolicy::with_cache_capacity(capacity))
            .expect("enable spill");
        let store = spilled.spill_store().expect("store attached").clone();

        for &threads in THREAD_COUNTS {
            store.clear_cache();
            store.reset_stats();
            let config = ScanConfig::default()
                .with_threads(threads)
                .with_channel_cap(cap);
            let mut stream = drive_streaming(
                spilled.scan_snapshot(),
                projection.clone(),
                restrictions.clone(),
                config,
            );
            let mut rows = Vec::new();
            while let Some(batch) = stream.next_batch() {
                for row in 0..batch.len() {
                    rows.push(batch.row(row));
                }
            }
            assert_eq!(rows, reference, "cache {name} threads {threads}");
            assert!(
                stream.max_in_flight() <= cap,
                "cache {name} threads {threads}: high-water {}",
                stream.max_in_flight()
            );
            let stats = stream.stats();
            assert_eq!(stats.blocks_total, blocks, "cache {name} threads {threads}");
            assert_eq!(stats.blocks_skipped, 0, "Q6 is not SMA-prunable here");
            // Pins are per-morsel now, not per-scan — yet each cold block is still
            // read from disk exactly once per scan (pinned while scanned, released
            // after), so the I/O accounting stays exact even while thrashing.
            let io = store.stats();
            assert_eq!(
                io.block_reads, blocks as u64,
                "cache {name} threads {threads}: every block read exactly once: {io:?}"
            );
            assert_eq!(store.pinned_count(), 0, "cache {name} threads {threads}");
        }
    }
}

/// Cold-scan read-ahead is purely a hint: rows must stay byte-identical to the
/// in-memory reference for every cache regime × thread count × depth, while the
/// store's counters split the I/O into demand `block_reads` and
/// `prefetch_reads`. A demand pin racing an in-flight prefetch may load a block
/// twice (both counted), so the accounting is bounded from both sides rather
/// than pinned to an exact sum: every block is loaded at least once by *some*
/// path, and demand reads never exceed one per block (one pin per morsel).
#[test]
fn readahead_scans_byte_identical_with_split_read_accounting() {
    let db = tpch();
    let lineitem = db.relation("lineitem");
    let restrictions = q6_restrictions(lineitem);
    let reference = scan_rows(lineitem, &restrictions, ScanConfig::default());
    let blocks = lineitem.cold_block_count() as u64;

    let cold_bytes = lineitem.storage_stats().cold_bytes;
    for (name, capacity) in cache_configs(cold_bytes) {
        let mut spilled = lineitem.clone();
        spilled
            .enable_spill(&SpillPolicy::with_cache_capacity(capacity))
            .expect("enable spill");
        let store = spilled.spill_store().expect("store attached").clone();
        for &threads in &[1usize, 4] {
            for &readahead in &[1usize, 4] {
                // A straggling prefetch from the previous iteration could warm
                // blocks past the clear and skew the counters below.
                store.quiesce_prefetch();
                store.clear_cache();
                store.reset_stats();
                let config = ScanConfig::default()
                    .with_threads(threads)
                    .with_readahead(readahead);
                let rows = scan_rows(&spilled, &restrictions, config);
                assert_eq!(
                    rows, reference,
                    "cache {name} threads {threads} readahead {readahead}"
                );
                let io = store.stats();
                assert!(
                    io.block_reads + io.prefetch_reads >= blocks,
                    "cache {name} threads {threads} readahead {readahead}: \
                     every block loaded at least once: {io:?}"
                );
                assert!(
                    io.block_reads <= blocks,
                    "cache {name} threads {threads} readahead {readahead}: \
                     at most one demand read per block: {io:?}"
                );
            }
        }
    }
}

#[test]
fn sma_pruning_skips_cold_blocks_without_reading_them() {
    let db = tpch();
    let mut lineitem = db.relation("lineitem").clone();
    lineitem
        .enable_spill(&SpillPolicy::with_cache_capacity(usize::MAX))
        .expect("enable spill");
    let store = lineitem.spill_store().unwrap().clone();

    // l_orderkey is insertion-clustered, so a narrow key range rules out most
    // blocks by SMA alone — from the in-memory directory, with zero disk reads.
    let s = lineitem.schema();
    let max_key = {
        let mut scanner = RelationScanner::new(
            &lineitem,
            vec![s.idx("l_orderkey")],
            vec![],
            ScanConfig::default(),
        );
        let batch = scanner.collect_all();
        (0..batch.len())
            .map(|r| batch.value(r, 0).as_int().unwrap())
            .max()
            .unwrap()
    };
    let restrictions = vec![Restriction::between(
        s.idx("l_orderkey"),
        1i64,
        max_key / 16,
    )];

    store.clear_cache();
    store.reset_stats();
    let mut scanner = RelationScanner::new(
        &lineitem,
        vec![s.idx("l_orderkey")],
        restrictions,
        ScanConfig::default(),
    );
    let batch = scanner.collect_all();
    assert!(!batch.is_empty());
    let stats = scanner.stats();
    assert!(
        stats.blocks_skipped > 0,
        "SMAs must prune blocks: {stats:?}"
    );
    // Every non-pruned block was read from disk exactly once; pruned blocks never.
    // (Equality holds because these restrictions are SMA-prunable: the planner's
    // non-SMA rule-outs — dictionary probes etc. — would load a block and then
    // skip it, which is still counted in blocks_skipped but costs one read.)
    let io = store.stats();
    assert_eq!(
        io.block_reads as usize,
        stats.blocks_total - stats.blocks_skipped,
        "pruned cold blocks must not be read: {io:?} vs {stats:?}"
    );
}

#[test]
fn tpch_queries_agree_between_memory_and_spilled_database() {
    let in_memory = tpch();
    let mut spilled = tpch();
    spilled
        .db
        .enable_spill(SpillPolicy::with_cache_capacity(256 << 10))
        .expect("enable spill");

    for query in ["Q1", "Q6", "Q3", "Q12", "Q14"] {
        for &threads in &[1usize, 4] {
            let config = ScanConfig::default().with_threads(threads);
            let expected = run_query(&in_memory, query, config);
            let actual = run_query(&spilled, query, config);
            assert_eq!(
                expected.batch.len(),
                actual.batch.len(),
                "{query} threads {threads}"
            );
            for row in 0..expected.batch.len() {
                let (e, a) = (expected.batch.row(row), actual.batch.row(row));
                for (col, (ev, av)) in e.iter().zip(&a).enumerate() {
                    match (ev, av) {
                        // Parallel double sums are a floating-point reduction whose
                        // association depends on the morsel→worker schedule (equal
                        // up to reassociation, per the PR-2 contract); every other
                        // type must be byte-identical.
                        (Value::Double(x), Value::Double(y)) => {
                            let scale = x.abs().max(y.abs()).max(1.0);
                            assert!(
                                (x - y).abs() / scale < 1e-9,
                                "{query} threads {threads} row {row} col {col}: {x} vs {y}"
                            );
                        }
                        _ => assert_eq!(ev, av, "{query} threads {threads} row {row} col {col}"),
                    }
                }
            }
        }
    }
}

#[test]
fn oltp_works_against_spilled_blocks() {
    let mut db = tpch();
    let customer = db.db.relation_mut("customer");
    customer
        .enable_spill(&SpillPolicy::with_cache_capacity(1)) // thrash: every access pages in
        .expect("enable spill");
    let s = customer.schema();
    let name_col = s.idx("c_name");
    let live_before = customer.live_row_count();

    // point lookup through the PK index pages the block in
    let id = customer.lookup_pk(7).expect("customer 7 exists");
    assert!(matches!(customer.get(id, name_col), Value::Str(_)));

    // delete rewrites the spilled block; the tombstone survives a cache drop
    assert!(customer.delete(id));
    customer.spill_store().unwrap().clear_cache();
    assert!(customer.lookup_pk(7).is_none());
    assert_eq!(customer.live_row_count(), live_before - 1);

    // update of a frozen record = delete + re-insert into the hot tail
    let id9 = customer.lookup_pk(9).expect("customer 9 exists");
    let mut row = customer.get_row(id9);
    row[name_col] = Value::Str("updated-customer".into());
    let new_id = customer.update(id9, row);
    assert!(customer.is_deleted(id9));
    assert_eq!(
        customer.get(customer.lookup_pk(9).unwrap(), name_col),
        Value::Str("updated-customer".into())
    );
    assert_eq!(new_id, customer.lookup_pk(9).unwrap());
}

#[test]
fn empty_relation_spill_reload_roundtrip() {
    use data_blocks::datablocks::DataType;
    use data_blocks::storage::{ColumnDef, Schema};

    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int),
        ColumnDef::new("tag", DataType::Str),
    ])
    .with_primary_key("id");
    let mut rel = Relation::with_chunk_capacity("empty", schema, 512);
    rel.enable_spill(&SpillPolicy::default()).expect("spill");

    // freezing an empty relation produces no blocks and no frames
    rel.freeze_all();
    assert_eq!(rel.cold_block_count(), 0);
    assert_eq!(rel.spill_store().unwrap().block_count(), 0);
    let mut scanner = RelationScanner::new(&rel, vec![0], vec![], ScanConfig::default());
    assert!(scanner.next_batch().is_none());

    // rows inserted after the (empty) spill freeze into the store as usual
    for i in 0..1_500 {
        rel.insert(vec![Value::Int(i), Value::Str(format!("t{i}"))]);
    }
    rel.freeze_all();
    assert_eq!(rel.cold_block_count(), 3);
    assert_eq!(rel.spill_store().unwrap().block_count(), 3);
    rel.spill_store().unwrap().clear_cache();
    assert_eq!(rel.live_row_count(), 1_500);
    let id = rel.lookup_pk(1_234).expect("reloadable");
    assert_eq!(rel.get(id, 1), Value::Str("t1234".into()));
}
