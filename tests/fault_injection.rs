//! Deterministic fault-injection matrix for the block store's durability
//! protocol: a seeded [`FaultInjector`] crashes (or tears the write short) at
//! **every named failpoint site**, the store is dropped like a killed process
//! and reopened cold, and the test asserts the recovery contract:
//!
//! * **old-or-new** — every block the reopened directory serves decodes
//!   cleanly and matches a version that was actually written (the pre-fault or
//!   the in-flight one), never a silent mix;
//! * **zero loss of synced writes** — under `Durability::Sync { group_commit:
//!   1 }` every operation that was *acknowledged* before the crash is present
//!   after the reopen;
//! * **loud, structured failure** — a genuinely corrupt frame surfaces as a
//!   typed [`ColdReadError`] naming the block, generation and byte offset (on
//!   both the serial and the parallel streaming scan path, whose workers
//!   cancel and join cleanly) instead of a worker panic;
//! * **transient-error absorption** — short `Interrupted` bursts are retried
//!   invisibly and counted in [`IoStats::retries`]; a prefetch failure never
//!   kills the read-ahead worker or the scan.
//!
//! The site inventory lives in the `storage::blockstore` module docs; the
//! discovery test below pins the workload to it so a new failpoint cannot be
//! added without extending this matrix.

use std::sync::Arc;
use std::time::{Duration, Instant};

use data_blocks::datablocks::builder::{freeze, int_column};
use data_blocks::datablocks::{DataBlock, DataType, Value};
use data_blocks::exec::{RelationScanner, ScanConfig};
use data_blocks::storage::{
    BlockStore, ColumnDef, Durability, FaultAction, FaultInjector, Relation, Schema, SpillPolicy,
    StoreError,
};

/// Every failpoint site the store's I/O goes through (kept in sync with the
/// table in the `storage::blockstore` module docs — the discovery test fails
/// if the workload misses one).
const ALL_SITES: &[&str] = &[
    "gen.append_write",
    "gen.rewrite_write",
    "gen.sync",
    "manifest.append",
    "manifest.sync",
    "pin.read",
    "prefetch.read",
    "compact.read",
    "compact.write",
    "compact.sync",
    "compact.reclaim",
    "checkpoint.write",
    "checkpoint.sync",
    "checkpoint.rename",
    "checkpoint.dir_sync",
];

/// The sites where a *write* payload can be torn short by a power cut. At
/// every other site `Torn` degrades to `Crash`, which the crash matrix covers.
const WRITE_SITES: &[&str] = &[
    "gen.append_write",
    "gen.rewrite_write",
    "manifest.append",
    "compact.write",
    "checkpoint.write",
];

const ROWS: i64 = 256;

fn test_block(tag: i64) -> Arc<DataBlock> {
    Arc::new(freeze(&[int_column(
        (0..ROWS).map(|i| tag * 1000 + i).collect(),
    )]))
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "datablocks-fault-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// What the test believes about one block id: every version whose write was
/// *attempted* (chronological), and the index of the latest version whose
/// operation was *acknowledged* (`Ok` returned to the caller). A version is
/// `(tag, row0_deleted)` — tag fixes all 256 values, the flag is the one
/// mutation the workload performs.
#[derive(Debug, Clone)]
struct BlockModel {
    versions: Vec<(i64, bool)>,
    acked: Option<usize>,
}

/// Drive one store through every failpoint site: three appends, a demand pin
/// after a cache flush, a prefetch, a delete-flag mutation (rewrite), an
/// explicit compaction and an explicit checkpoint. Returns the acked/attempted
/// model; each operation's error (the armed fault, or crash-stop after it) is
/// deliberately swallowed — the disk, not the return values, is under test.
fn run_workload(store: &Arc<BlockStore>, injector: &FaultInjector) -> Vec<BlockModel> {
    let mut model: Vec<BlockModel> = Vec::new();
    for tag in 0..3 {
        let mut entry = BlockModel {
            versions: vec![(tag, false)],
            acked: None,
        };
        if store.append(test_block(tag)).is_ok() {
            entry.acked = Some(0);
        }
        model.push(entry);
    }
    // demand read of a cache miss
    store.clear_cache();
    let _ = store.pin(0);
    // read-ahead: wait until the worker either landed the block, failed, or
    // entered crash-stop (the queue drains asynchronously)
    store.prefetch(&[1]);
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if injector.crashed() || store.is_cached(1) || store.stats().prefetch_errors > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // delete-flag mutation: rewrite block 0 with row 0 tombstoned
    model[0].versions.push((0, true));
    let mutated = store.mutate(0, |block| {
        let mut updated = block.clone();
        updated.delete(0);
        (Some(updated), ())
    });
    if mutated.is_ok() {
        model[0].acked = Some(1);
    }
    // dead-frame compaction (commit point = the checkpoint swap) and one more
    // explicit checkpoint on top
    let _ = store.compact();
    let _ = store.checkpoint();
    model
}

/// The reopen contract against the model: acked operations are all present
/// (zero loss of synced writes), and every block the directory serves decodes
/// cleanly to a version that was actually written — at least as new as the
/// last acked one, never older, never a mix, never garbage.
fn verify_against_model(store: &Arc<BlockStore>, model: &[BlockModel], context: &str) {
    assert!(
        store.block_count() <= model.len(),
        "{context}: reopened {} blocks but only {} were ever appended",
        store.block_count(),
        model.len()
    );
    for (id, entry) in model.iter().enumerate() {
        if entry.acked.is_some() {
            assert!(
                id < store.block_count(),
                "{context}: acknowledged block {id} lost on reopen"
            );
        }
    }
    for (id, entry) in model.iter().enumerate().take(store.block_count()) {
        let pinned = store
            .pin(id)
            .unwrap_or_else(|err| panic!("{context}: block {id} unreadable after reopen: {err}"));
        let tag = match pinned.get(1, 0) {
            Value::Int(v) => v / 1000,
            other => panic!("{context}: block {id} row 1 decoded to {other:?}"),
        };
        for row in 0..ROWS as usize {
            assert_eq!(
                pinned.get(row, 0),
                Value::Int(tag * 1000 + row as i64),
                "{context}: block {id} row {row} inconsistent with tag {tag}"
            );
        }
        let state = (tag, pinned.is_deleted(0));
        let floor = entry.acked.unwrap_or(0);
        assert!(
            entry.versions[floor..].contains(&state),
            "{context}: block {id} reopened as {state:?}, acceptable versions {:?}",
            &entry.versions[floor..]
        );
    }
}

/// Arm one fault at one site, run the workload under `Sync { group_commit: 1 }`,
/// drop the store (the crashed process), reopen the files cold and verify.
fn check_fault_at(site: &'static str, action: FaultAction, seed: u64) {
    let dir = unique_dir("site");
    let path = dir.join("store.dbs");
    let model = {
        let injector = FaultInjector::new(seed);
        injector.arm(site, action);
        let store = BlockStore::create_opts(
            &path,
            usize::MAX,
            Durability::Sync { group_commit: 1 },
            Some(Arc::clone(&injector)),
        )
        .expect("create store");
        let model = run_workload(&store, &injector);
        assert!(
            injector.sites_hit().contains(&site),
            "workload never reached armed failpoint {site}; hit: {:?}",
            injector.sites_hit()
        );
        assert!(
            injector.crashed(),
            "{action:?} at {site} must enter crash-stop"
        );
        model
    }; // drop = the crashed process going away; its checkpoint attempt fails
    let reopened = BlockStore::reopen(&path, usize::MAX)
        .unwrap_or_else(|err| panic!("reopen after {action:?} at {site}: {err}"));
    verify_against_model(&reopened, &model, &format!("{action:?} at {site}"));
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The workload reaches every failpoint in the inventory (so the matrices
/// below actually exercise what they claim to), and with nothing armed every
/// operation acks.
#[test]
fn workload_visits_every_failpoint() {
    let dir = unique_dir("discovery");
    let path = dir.join("store.dbs");
    let injector = FaultInjector::new(42);
    let store = BlockStore::create_opts(
        &path,
        usize::MAX,
        Durability::Sync { group_commit: 1 },
        Some(Arc::clone(&injector)),
    )
    .expect("create store");
    let model = run_workload(&store, &injector);
    assert!(!injector.crashed());
    for (id, entry) in model.iter().enumerate() {
        assert!(entry.acked.is_some(), "unfaulted op on block {id} failed");
    }
    let hit = injector.sites_hit();
    for site in ALL_SITES {
        assert!(
            hit.contains(site),
            "workload never reached failpoint {site}; hit: {hit:?}"
        );
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-point matrix: crash-stop at every failpoint, reopen, verify
/// old-or-new plus zero loss of acknowledged writes.
#[test]
fn crash_at_every_failpoint_reopens_old_or_new() {
    for (i, &site) in ALL_SITES.iter().enumerate() {
        check_fault_at(site, FaultAction::Crash, 0xC0FFEE + i as u64);
    }
}

/// The torn-write matrix: at every write site, persist only a prefix of the
/// payload (0 bytes, a short deterministic cut, and a cut past most frames)
/// before crash-stop — the manifest ordering must keep every torn prefix
/// unreachable or detectable.
#[test]
fn torn_write_at_every_write_site_reopens_old_or_new() {
    let cuts = FaultInjector::new(0xDEAD_BEEF);
    for &site in WRITE_SITES {
        for keep in [0, 7 + (cuts.next_u64() % 64) as usize, 4000] {
            check_fault_at(site, FaultAction::Torn { keep }, 0xBAD5EED);
        }
    }
}

/// A short transient burst (within the retry budget) is absorbed invisibly
/// and counted; a burst one longer than the budget surfaces the error, after
/// which the site heals and the next attempt succeeds.
#[test]
fn transient_errors_are_retried_and_counted() {
    let injector = FaultInjector::new(7);
    let store = BlockStore::create_temp_opts(
        usize::MAX,
        Durability::Buffered,
        Some(Arc::clone(&injector)),
    )
    .expect("create store");
    injector.arm("gen.append_write", FaultAction::Transient { times: 3 });
    let id = store
        .append(test_block(5))
        .expect("append retries through a 3-error burst");
    assert_eq!(store.stats().retries, 3, "absorbed retries are counted");
    // one more failure than the budget: the error surfaces to the caller
    store.clear_cache();
    injector.arm("pin.read", FaultAction::Transient { times: 4 });
    let err = store
        .pin(id)
        .expect_err("a 4-error burst exceeds the retry budget");
    assert!(matches!(err, StoreError::Io(_)), "surfaced as I/O: {err}");
    // the burst consumed the plan: the site healed, the demand read succeeds
    let pinned = store.pin(id).expect("pin after the site healed");
    assert_eq!(pinned.get(1, 0), Value::Int(5001));
    assert_eq!(store.stats().retries, 6);
    assert!(!injector.crashed(), "transient faults never crash-stop");
}

/// A failing prefetch neither kills the read-ahead worker nor the scan: the
/// error is counted in `prefetch_errors`, the block simply stays cold, the
/// demand pin pays the read — and a later prefetch still lands blocks.
#[test]
fn prefetch_error_falls_back_to_demand_read() {
    let injector = FaultInjector::new(11);
    let store = BlockStore::create_temp_opts(
        usize::MAX,
        Durability::Buffered,
        Some(Arc::clone(&injector)),
    )
    .expect("create store");
    let a = store.append(test_block(1)).expect("append a");
    let b = store.append(test_block(2)).expect("append b");
    store.clear_cache();
    injector.arm("prefetch.read", FaultAction::Transient { times: 4 });
    store.prefetch(&[a]);
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.stats().prefetch_errors == 0 {
        assert!(
            Instant::now() < deadline,
            "prefetch worker never reported the injected failure"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        !store.is_cached(a),
        "failed prefetch must not admit the block"
    );
    // demand read falls back (the 4-hit burst healed the site)
    let pinned = store.pin(a).expect("demand pin after prefetch failure");
    assert_eq!(pinned.get(0, 0), Value::Int(1000));
    drop(pinned);
    // the worker thread survived: a later prefetch still pages blocks in
    store.prefetch(&[b]);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !store.is_cached(b) {
        assert!(
            Instant::now() < deadline,
            "prefetch worker died after the injected failure"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = store.stats();
    assert_eq!(stats.prefetch_errors, 1);
    // prefetch_reads counts read-ahead I/O *issued* (like bytes_read): the
    // failed attempt and the healthy one
    assert_eq!(stats.prefetch_reads, 2);
    assert_eq!(
        stats.retries, 3,
        "the failed prefetch burned the retry budget"
    );
}

/// A genuinely corrupt on-disk frame surfaces as a *structured* error naming
/// the block, generation and byte offset — on the serial scan path and on the
/// parallel streaming path, whose workers cancel and join cleanly instead of
/// panicking the process.
#[test]
fn corrupt_frame_surfaces_structured_scan_error() {
    let dir = unique_dir("corrupt");
    let path = dir.join("rel.dbs");
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int),
        ColumnDef::new("v", DataType::Int),
    ])
    .with_primary_key("id");
    // small chunks → several cold blocks, all spilled
    let mut rel = Relation::with_chunk_capacity("t", schema, 512);
    rel.enable_spill(&SpillPolicy {
        cache_capacity_bytes: usize::MAX,
        path: Some(path.clone()),
        ..SpillPolicy::default()
    })
    .expect("enable spill");
    for i in 0..4 * 512 {
        rel.insert(vec![Value::Int(i), Value::Int(i * 3)]);
    }
    rel.freeze_all();
    let store = Arc::clone(rel.spill_store().expect("spill store"));
    assert!(store.block_count() >= 4, "need several spilled blocks");

    // flip one byte in the middle of block 2's frame, behind the store's back
    let target = 2;
    let offset: u64 = (0..target).map(|id| store.entry_len(id) as u64).sum();
    let poke = offset + store.entry_len(target) as u64 / 2;
    {
        use std::os::unix::fs::FileExt as _;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .expect("open spill file raw");
        let mut byte = [0u8];
        file.read_exact_at(&mut byte, poke).expect("read byte");
        byte[0] ^= 0xFF;
        file.write_all_at(&byte, poke).expect("flip byte");
    }
    store.clear_cache();

    // the typed pin path names the exact on-disk position
    let err = store
        .pin_described(target)
        .expect_err("checksum must catch the flipped byte");
    assert_eq!(err.block_id, target);
    assert_eq!(err.generation, 0);
    assert_eq!(err.offset, offset);
    assert!(!err.detail.is_empty());

    // serial scan: structured error, not a panic
    let scan_error = |threads: usize| {
        let mut scanner = RelationScanner::new(
            &rel,
            vec![0, 1],
            vec![],
            ScanConfig::default().with_threads(threads),
        );
        loop {
            match scanner.try_next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("scan with {threads} threads missed the corrupt frame"),
                Err(err) => {
                    // After the error the parallel stream is cancelled and
                    // every worker joined; the serial scanner resumes with the
                    // next morsel. Either way, pulling again must not hang,
                    // panic, or re-surface the same morsel's error forever.
                    match scanner.try_next_batch() {
                        Ok(_) => {}
                        Err(after) => assert_eq!(after.block_id, err.block_id),
                    }
                    return err;
                }
            }
        }
    };
    for threads in [1, 4] {
        let err = scan_error(threads);
        assert_eq!(err.block_id, target, "threads {threads}");
        assert_eq!(err.generation, 0, "threads {threads}");
        assert_eq!(err.offset, offset, "threads {threads}");
    }
    drop(rel);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
