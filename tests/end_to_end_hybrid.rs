//! Integration tests spanning storage, datablocks and exec: the full hybrid
//! OLTP + OLAP life cycle of a relation.

use data_blocks::datablocks::{CmpOp, DataType, Restriction, ScanOptions, Value};
use data_blocks::exec::prelude::*;
use data_blocks::storage::{ColumnDef, Relation, Schema, Segment};

fn orders_relation(rows: i64, chunk: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("o_id", DataType::Int),
        ColumnDef::new("o_region", DataType::Str),
        ColumnDef::new("o_amount", DataType::Int),
        ColumnDef::nullable("o_note", DataType::Str),
    ])
    .with_primary_key("o_id");
    let mut rel = Relation::with_chunk_capacity("orders_it", schema, chunk);
    for i in 0..rows {
        rel.insert(vec![
            Value::Int(i),
            Value::Str(["north", "south", "east", "west"][(i % 4) as usize].to_string()),
            Value::Int(100 + i % 1000),
            if i % 10 == 0 {
                Value::Null
            } else {
                Value::Str(format!("note{}", i % 7))
            },
        ]);
    }
    rel
}

#[test]
fn freeze_scan_update_delete_lifecycle() {
    let mut rel = orders_relation(30_000, 8_192);
    rel.freeze_full_chunks();
    assert!(rel.cold_block_count() >= 3);
    assert_eq!(rel.hot_chunks().len(), 1);

    // OLAP: aggregate over hot + cold with SARG push-down.
    let count_where = |rel: &Relation, lo: i64, hi: i64| -> i64 {
        let s = rel.schema();
        let scan = RelationScanner::new(
            rel,
            vec![s.idx("o_amount")],
            vec![Restriction::between(s.idx("o_amount"), lo, hi)],
            ScanConfig::default(),
        );
        let mut agg = HashAggregateOp::new(
            Box::new(ScanOp::new(scan)),
            vec![],
            vec![],
            vec![AggSpec::new(
                AggFunc::CountStar,
                Expr::lit(0i64),
                DataType::Int,
            )],
        );
        agg.collect_all().value(0, 0).as_int().unwrap()
    };
    let before = count_where(&rel, 100, 199);
    assert_eq!(before, 3_000);

    // OLTP: update a frozen record (delete + re-insert) and delete another.
    let frozen_id = rel.lookup_pk(5).unwrap();
    assert!(matches!(frozen_id.segment, Segment::Cold(_)));
    rel.update(
        frozen_id,
        vec![
            Value::Int(5),
            Value::Str("north".into()),
            Value::Int(5_000),
            Value::Null,
        ],
    );
    let deleted_id = rel.lookup_pk(6).unwrap();
    rel.delete(deleted_id);

    // Both changes are visible to subsequent scans (5 moved out of range, 6 gone).
    let after = count_where(&rel, 100, 199);
    assert_eq!(after, before - 2);

    // Point lookups see the new version from the hot tail.
    let new_id = rel.lookup_pk(5).unwrap();
    assert!(matches!(new_id.segment, Segment::Hot(_)));
    assert_eq!(rel.get(new_id, 2), Value::Int(5_000));
    assert!(rel.lookup_pk(6).is_none());
}

#[test]
fn scan_modes_and_isa_levels_agree_end_to_end() {
    let mut rel = orders_relation(20_000, 4_096);
    rel.freeze_full_chunks();
    let s = rel.schema();
    let restrictions = vec![
        Restriction::between(s.idx("o_amount"), 300i64, 599i64),
        Restriction::eq(s.idx("o_region"), "east"),
        Restriction::IsNotNull {
            column: s.idx("o_note"),
        },
    ];
    let mut counts = Vec::new();
    for name in [
        "jit",
        "vectorized",
        "vectorized+sarg",
        "datablocks+sarg",
        "datablocks+psma",
    ] {
        let mut config = ScanConfig::named(name);
        for isa in IsaLevel::available() {
            config.options.isa = isa;
            let mut scanner = RelationScanner::new(&rel, vec![0, 2], restrictions.clone(), config);
            counts.push(scanner.collect_all().len());
        }
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    assert!(counts[0] > 0);
}

#[test]
fn serialized_blocks_answer_the_same_queries() {
    let mut rel = orders_relation(10_000, 2_048);
    rel.freeze_all();
    for idx in 0..rel.cold_block_count() {
        let block = &*rel.cold_block(idx);
        let bytes = data_blocks::datablocks::layout::to_bytes(block);
        let restored = data_blocks::datablocks::layout::from_bytes(&bytes).expect("roundtrip");
        let restriction = [Restriction::cmp(2, CmpOp::Ge, 900i64)];
        let a = data_blocks::datablocks::scan_collect(block, &restriction, ScanOptions::default());
        let b =
            data_blocks::datablocks::scan_collect(&restored, &restriction, ScanOptions::default());
        assert_eq!(a, b);
    }
}

#[test]
fn point_access_throughput_path_returns_correct_rows() {
    let mut rel = orders_relation(50_000, 16_384);
    rel.freeze_all();
    // with index
    for key in [0i64, 123, 49_999, 25_000] {
        let id = rel.lookup_pk(key).unwrap();
        assert_eq!(rel.get(id, 0), Value::Int(key));
    }
    // without index: SMA/PSMA narrowed scans find the same rows
    rel.drop_pk_index();
    for key in [0i64, 123, 49_999, 25_000] {
        let id = rel.lookup_pk_scan(key, ScanOptions::default()).unwrap();
        assert_eq!(rel.get(id, 0), Value::Int(key));
    }
}
