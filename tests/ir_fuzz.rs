//! Deterministic IR fuzzing suite (see `query::fuzz` for the harness).
//!
//! Four pins, each a differential against the row-at-a-time reference
//! interpreter:
//! * a fixed-seed sweep of generated catalogs + well-typed plans, checked
//!   across threads {1, 4} × {memory, thrash-cache spill};
//! * full determinism — the same seed regenerates byte-identical cases and
//!   verdicts (what makes CI failures one-command reproducible);
//! * the harness's own teeth — a deliberately injected planner-style bug
//!   (`<=` mis-compiled as `<`) must be *caught* and *shrunk* to a minimal
//!   self-contained repro;
//! * hand-written degenerate cases (empty relation, all-NULL group keys,
//!   zero-row aggregate, empty build side) through the full
//!   IR → planner → exec path.
//!
//! Plus the round-trip/golden property over every checked-in query document
//! (`crates/workloads/queries/*.json`): `parse → to_pretty → parse` is a fixed
//! point and the rendered physical plan matches the golden byte-for-byte.

use data_blocks::datablocks::Value;
use data_blocks::exec::ScanConfig;
use data_blocks::query::fuzz::{self, Catalog, ColumnSpec, FuzzCase, RelationData};
use data_blocks::query::{self, parse_ir};
use data_blocks::workloads::tpch::TpchDb;

#[test]
fn fixed_seed_sweep_agrees_with_reference() {
    for seed in 1..=80u64 {
        if let Err(failure) = fuzz::run_seed(seed) {
            let case = fuzz::generate_case(seed);
            panic!(
                "seed {seed} failed: {failure}\nself-contained repro:\n{}",
                fuzz::repro_json(&case)
            );
        }
    }
}

#[test]
fn generation_and_verdicts_are_deterministic() {
    for seed in [1u64, 7, 42, 913] {
        let a = fuzz::generate_case(seed);
        let b = fuzz::generate_case(seed);
        assert_eq!(
            a.ir.to_pretty(),
            b.ir.to_pretty(),
            "seed {seed}: plan drift"
        );
        assert_eq!(
            fuzz::repro_json(&a),
            fuzz::repro_json(&b),
            "seed {seed}: case drift"
        );
        let va = fuzz::check_case(&a).is_ok();
        let vb = fuzz::check_case(&b).is_ok();
        assert_eq!(va, vb, "seed {seed}: verdict drift");
    }
}

/// The differential predicate for the injected bug: run the engine on the
/// plan with its first `<=` flipped to `<` while the reference interprets the
/// original — observationally a planner that mis-compiles the comparison
/// (e.g. a flipped bound while merging push-down ranges).
fn flipped_le_fails(case: &FuzzCase) -> bool {
    let Some(flipped) = fuzz::flip_first_le(&case.ir) else {
        return false;
    };
    matches!(
        fuzz::check_case_with(case, Some(&flipped)),
        Err(f) if f.kind == fuzz::FailureKind::Result
    )
}

#[test]
fn injected_comparison_bug_is_caught_and_shrunk() {
    // Scan seeds for cases where the flip is semantically visible (cheap:
    // reference vs reference), then demand the full differential catches
    // every one of them as a result mismatch.
    let mut caught = Vec::new();
    for seed in 1..=400u64 {
        let case = fuzz::generate_case(seed);
        let Some(flipped) = fuzz::flip_first_le(&case.ir) else {
            continue;
        };
        let mutated = FuzzCase {
            ir: flipped.clone(),
            ..case.clone()
        };
        let (Ok(original), Ok(mutant)) =
            (fuzz::reference_rows(&case), fuzz::reference_rows(&mutated))
        else {
            continue;
        };
        if original == mutant {
            continue;
        }
        let failure = fuzz::check_case_with(&case, Some(&flipped))
            .expect_err("a semantically visible flip must fail the differential");
        assert_eq!(
            failure.kind,
            fuzz::FailureKind::Result,
            "seed {seed}: {failure}"
        );
        caught.push(case);
    }
    assert!(
        !caught.is_empty(),
        "no seed in range exposed the injected bug — generator coverage regressed"
    );

    // Shrink the first catch and verify the minimized case still fails the
    // same way, with a dramatically smaller self-contained repro.
    let case = &caught[0];
    let shrunk = fuzz::shrink_case(case, &flipped_le_fails);
    assert!(
        fuzz::case_size(&shrunk) < fuzz::case_size(case),
        "shrinker made no progress on a generated failing case"
    );
    assert!(
        flipped_le_fails(&shrunk),
        "minimized case no longer reproduces the failure"
    );
    let repro = fuzz::repro_json(&shrunk);
    assert!(
        repro.len() < fuzz::repro_json(case).len(),
        "minimized repro must be smaller"
    );
    let reparsed = fuzz::parse_repro(&repro).expect("minimized repro parses");
    assert!(
        flipped_le_fails(&reparsed),
        "repro document must reproduce the failure after a round-trip"
    );
}

// ------------------------------------------------------- degenerate inputs

fn int_column(name: &str, nullable: bool) -> ColumnSpec {
    ColumnSpec {
        name: name.into(),
        ty: data_blocks::datablocks::DataType::Int,
        nullable,
    }
}

fn relation(name: &str, columns: Vec<ColumnSpec>, rows: Vec<Vec<Value>>) -> RelationData {
    RelationData {
        name: name.into(),
        chunk_capacity: 4,
        freeze: true,
        columns,
        rows,
    }
}

fn check(case: &FuzzCase) {
    if let Err(failure) = fuzz::check_case(case) {
        panic!("{failure}\nrepro:\n{}", fuzz::repro_json(case));
    }
}

#[test]
fn degenerate_empty_relation_through_full_path() {
    let case = FuzzCase {
        seed: 0,
        catalog: Catalog {
            relations: vec![relation("empty", vec![int_column("a", false)], vec![])],
        },
        ir: parse_ir(
            r#"{"version": 1, "plan": {
                "op": "sort",
                "input": {"op": "scan", "relation": "empty", "columns": ["a"]},
                "keys": [{"column": 0, "order": "desc"}]}}"#,
        )
        .unwrap(),
    };
    assert_eq!(fuzz::reference_rows(&case).unwrap().len(), 0);
    check(&case);
}

#[test]
fn degenerate_aggregate_over_zero_rows_emits_no_groups() {
    // A global aggregate over an empty input emits zero rows (the engine's
    // hash table has no entries) — the reference pins that contract too.
    let case = FuzzCase {
        seed: 0,
        catalog: Catalog {
            relations: vec![relation(
                "t",
                vec![int_column("a", false)],
                vec![vec![Value::Int(5)], vec![Value::Int(9)]],
            )],
        },
        ir: parse_ir(
            r#"{"version": 1, "plan": {
                "op": "aggregate",
                "input": {"op": "scan", "relation": "t", "columns": ["a"],
                          "predicates": [{"column": "a", "cmp": "lt", "value": {"int": 0}}]},
                "groups": [],
                "aggregates": [
                    {"func": "sum", "expr": {"col": 0}, "type": "int"},
                    {"func": "count_star", "type": "int"}]}}"#,
        )
        .unwrap(),
    };
    assert_eq!(fuzz::reference_rows(&case).unwrap().len(), 0);
    check(&case);
}

#[test]
fn degenerate_all_null_group_keys_form_one_group() {
    let case = FuzzCase {
        seed: 0,
        catalog: Catalog {
            relations: vec![relation(
                "t",
                vec![int_column("k", true), int_column("v", false)],
                vec![
                    vec![Value::Null, Value::Int(1)],
                    vec![Value::Null, Value::Int(2)],
                    vec![Value::Null, Value::Int(3)],
                ],
            )],
        },
        ir: parse_ir(
            r#"{"version": 1, "plan": {
                "op": "aggregate",
                "input": {"op": "scan", "relation": "t", "columns": ["k", "v"]},
                "groups": [{"expr": {"col": 0}, "type": "int"}],
                "aggregates": [
                    {"func": "count", "expr": {"col": 0}, "type": "int"},
                    {"func": "sum", "expr": {"col": 1}, "type": "int"}]}}"#,
        )
        .unwrap(),
    };
    // One NULL-keyed group: count over the key sees no non-NULL values, the
    // sum still folds every row.
    assert_eq!(
        fuzz::reference_rows(&case).unwrap(),
        vec![vec![Value::Null, Value::Int(0), Value::Int(6)]]
    );
    check(&case);
}

#[test]
fn degenerate_join_with_empty_build_side() {
    let case = FuzzCase {
        seed: 0,
        catalog: Catalog {
            relations: vec![
                relation("build", vec![int_column("a", false)], vec![]),
                relation(
                    "probe",
                    vec![int_column("b", false)],
                    vec![vec![Value::Int(1)], vec![Value::Int(2)]],
                ),
            ],
        },
        ir: parse_ir(
            r#"{"version": 1, "plan": {
                "op": "join",
                "type": "inner",
                "build": {"op": "scan", "relation": "build", "columns": ["a"]},
                "probe": {"op": "scan", "relation": "probe", "columns": ["b"]},
                "build_keys": [0],
                "probe_keys": [0]}}"#,
        )
        .unwrap(),
    };
    assert_eq!(fuzz::reference_rows(&case).unwrap().len(), 0);
    check(&case);
}

// --------------------------------------- checked-in query round-trip/golden

const CHECKED_IN_QUERIES: &[&str] = &["Q1", "Q6", "Q3", "Q12", "Q14"];

#[test]
fn checked_in_queries_round_trip_and_match_plan_goldens() {
    use data_blocks::workloads::tpch::query_ir;
    use std::fmt::Write as _;

    // Only the relation schemas matter for planning.
    let db = TpchDb::generate_with_chunk(0.001, 1_024);
    let golden_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/workloads/queries/plans");

    for &name in CHECKED_IN_QUERIES {
        // parse → to_pretty → re-parse is a fixed point.
        let text = query_ir(name);
        let ir = parse_ir(text).unwrap_or_else(|err| panic!("{name}: {err}"));
        let pretty = ir.to_pretty();
        let reparsed = parse_ir(&pretty).unwrap_or_else(|err| panic!("{name} re-parse: {err}"));
        assert_eq!(
            reparsed.to_pretty(),
            pretty,
            "{name}: to_pretty is not a serializer fixed point"
        );

        // The rendered physical plan matches the golden byte-for-byte, and the
        // re-serialized document plans identically.
        let mut rendered = String::new();
        for threads in [1usize, 4] {
            let config = ScanConfig::default().with_threads(threads);
            let plan = query::compile(&db.db, config, text)
                .unwrap_or_else(|err| panic!("planning {name}: {err}"));
            let roundtripped = query::compile(&db.db, config, &pretty)
                .unwrap_or_else(|err| panic!("planning re-serialized {name}: {err}"));
            assert_eq!(
                plan.to_string(),
                roundtripped.to_string(),
                "{name} threads={threads}: re-serialized document lowers differently"
            );
            writeln!(rendered, "-- {name} threads={threads}").unwrap();
            writeln!(rendered, "{plan}").unwrap();
        }
        let golden_path = golden_dir.join(format!("{}.plan", name.to_lowercase()));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|err| panic!("reading {}: {err}", golden_path.display()));
        assert_eq!(
            golden,
            rendered,
            "{name}: rendered plan drifted from {}",
            golden_path.display()
        );
    }
}
