//! Tests of the bounded streaming morsel pipeline (`exec::morsel::drive_streaming`):
//! a deliberately slow consumer must cap in-flight batches at the channel bound and
//! must not deadlock for any thread count; output stays byte-identical to the
//! serial scan; cold-morsel pins are acquired and released incrementally (never
//! more than one per worker); and dropping the stream early cancels the workers
//! instead of hanging or leaking them.

use std::time::Duration;

use data_blocks::datablocks::{DataType, Restriction, Value};
use data_blocks::exec::{drive_streaming, RelationScanner, ScanConfig};
use data_blocks::storage::{ColumnDef, Relation, Schema, SpillPolicy};

const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Run `body` on a watchdog thread: a deadlock in the streaming machinery fails
/// the test with a timeout instead of wedging the whole suite.
fn with_timeout<T: Send + 'static>(secs: u64, body: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(body());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(value) => {
            handle.join().expect("test body panicked");
            value
        }
        Err(_) => panic!("timed out after {secs}s — streaming scan deadlocked?"),
    }
}

/// A mixed hot/cold relation with many morsels: `rows` records across
/// `chunk_capacity`-sized chunks, full chunks frozen, tail left hot.
fn mixed_relation(rows: i64, chunk_capacity: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int),
        ColumnDef::new("val", DataType::Int),
        ColumnDef::new("grp", DataType::Str),
    ]);
    let mut rel = Relation::with_chunk_capacity("stream", schema, chunk_capacity);
    for i in 0..rows {
        rel.insert(vec![
            Value::Int(i),
            Value::Int(i % 97),
            Value::Str(format!("g{}", i % 5)),
        ]);
    }
    rel.freeze_full_chunks();
    rel
}

fn serial_rows(rel: &Relation, restrictions: &[Restriction]) -> Vec<Vec<Value>> {
    let mut scanner = RelationScanner::new(
        rel,
        vec![0, 1],
        restrictions.to_vec(),
        ScanConfig::default(),
    );
    let batch = scanner.collect_all();
    (0..batch.len()).map(|row| batch.row(row)).collect()
}

/// The tentpole contract: a slow consumer suspends the workers — in-flight batches
/// never exceed the configured channel bound, total produced batches far exceed the
/// bound (so the scan genuinely streamed instead of materialising), and the output
/// is byte-identical to the serial scan. Threads {1, 2, 4, 8} × tight channel caps,
/// all under a watchdog.
#[test]
fn slow_consumer_is_backpressured_within_the_channel_bound() {
    with_timeout(300, || {
        let rel = mixed_relation(20_500, 1_000);
        let restrictions = vec![Restriction::cmp(
            1,
            data_blocks::datablocks::CmpOp::Ge,
            0i64,
        )];
        let reference = serial_rows(&rel, &restrictions);
        assert_eq!(reference.len(), 20_500, "unselective scan returns all rows");

        for &threads in THREAD_COUNTS {
            for cap in [1usize, 2, 4] {
                let config = ScanConfig::default()
                    .with_threads(threads)
                    .with_morsel_rows(250)
                    .with_channel_cap(cap);
                let mut stream = drive_streaming(
                    rel.scan_snapshot(),
                    vec![0, 1],
                    restrictions.clone(),
                    config,
                );
                let mut rows = Vec::new();
                let mut batches = 0usize;
                while let Some(batch) = stream.next_batch() {
                    batches += 1;
                    // Stall every few batches: workers must suspend, not buffer.
                    if batches.is_multiple_of(4) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    for row in 0..batch.len() {
                        rows.push(batch.row(row));
                    }
                }
                assert_eq!(
                    rows, reference,
                    "threads {threads} cap {cap}: stream must match serial order"
                );
                assert!(
                    stream.max_in_flight() <= cap,
                    "threads {threads} cap {cap}: in-flight high-water {} exceeds the bound",
                    stream.max_in_flight()
                );
                assert!(
                    batches > cap * 4,
                    "threads {threads} cap {cap}: only {batches} batches — scan did not stream"
                );
            }
        }
    });
}

/// The peak-memory bound that replaced the materialise-then-stream scan: a scan
/// whose full result is hundreds of batches keeps at most `channel_cap` of them
/// buffered (batch-count high-water mark), instead of all of them at once.
#[test]
fn streaming_scan_never_buffers_more_than_the_channel_cap() {
    with_timeout(300, || {
        let rel = mixed_relation(40_000, 1_000);
        for &threads in THREAD_COUNTS {
            let cap = 3usize;
            let config = ScanConfig::default()
                .with_threads(threads)
                .with_morsel_rows(200)
                .with_channel_cap(cap);
            let mut stream = drive_streaming(rel.scan_snapshot(), vec![0], Vec::new(), config);
            let mut total_batches = 0usize;
            let mut total_rows = 0usize;
            while let Some(batch) = stream.next_batch() {
                total_batches += 1;
                total_rows += batch.len();
            }
            assert_eq!(total_rows, 40_000, "threads {threads}");
            assert!(
                total_batches >= 40, // one per cold block at minimum
                "threads {threads}: expected many batches, got {total_batches}"
            );
            assert!(
                stream.max_in_flight() <= cap,
                "threads {threads}: high-water {} > cap {cap} on a {total_batches}-batch scan",
                stream.max_in_flight()
            );
            // The scan statistics of the drained stream match the serial scan.
            let mut serial = RelationScanner::new(&rel, vec![0], vec![], ScanConfig::default());
            serial.collect_all();
            assert_eq!(stream.stats(), serial.stats(), "threads {threads}");
        }
    });
}

/// Cold-morsel pin lifetimes are per-morsel, not per-scan: while a spilled
/// relation streams, the store never holds more than `threads` pins, and every pin
/// is released by the time the stream is drained — even with a consumer slow
/// enough that workers sit suspended on the channel while holding their pin.
#[test]
fn streaming_scan_holds_at_most_one_pin_per_worker() {
    with_timeout(300, || {
        let mut rel = mixed_relation(16_000, 1_000);
        rel.enable_spill(&SpillPolicy::with_cache_capacity(1)) // thrash: real paging
            .expect("enable spill");
        let store = rel.spill_store().expect("store attached").clone();

        for &threads in THREAD_COUNTS {
            store.clear_cache();
            let config = ScanConfig::default()
                .with_threads(threads)
                .with_channel_cap(2);
            let mut stream = drive_streaming(rel.scan_snapshot(), vec![0], Vec::new(), config);
            let mut rows = 0usize;
            while let Some(batch) = stream.next_batch() {
                rows += batch.len();
                assert!(
                    store.pinned_count() <= threads,
                    "threads {threads}: {} pins live at once",
                    store.pinned_count()
                );
                std::thread::sleep(Duration::from_micros(200));
            }
            assert_eq!(rows, 16_000, "threads {threads}");
            assert_eq!(
                store.pinned_count(),
                0,
                "threads {threads}: pins must all be released after the scan"
            );
        }
    });
}

/// Dropping the stream (or the scanner wrapping it) mid-scan cancels the workers:
/// they observe the flag at their next push and exit, and the drop joins them — no
/// deadlock, no runaway producer.
#[test]
fn dropping_the_stream_early_cancels_the_workers() {
    with_timeout(120, || {
        let rel = mixed_relation(30_000, 1_000);
        for &threads in THREAD_COUNTS {
            let config = ScanConfig::default()
                .with_threads(threads)
                .with_morsel_rows(200)
                .with_channel_cap(1);
            let mut stream = drive_streaming(rel.scan_snapshot(), vec![0], Vec::new(), config);
            let first = stream.next_batch();
            assert!(first.is_some(), "threads {threads}");
            drop(stream); // must join the (suspended) workers promptly
        }

        // The same through the scanner's pull interface.
        let mut scanner = RelationScanner::new(
            &rel,
            vec![0],
            vec![],
            ScanConfig::default().with_threads(4).with_channel_cap(1),
        );
        assert!(scanner.next_batch().is_some());
        drop(scanner);
    });
}

/// Streams over empty relations and over relations whose every block is pruned
/// terminate immediately with correct statistics.
#[test]
fn empty_and_fully_pruned_streams_terminate() {
    with_timeout(120, || {
        let schema = Schema::new(vec![ColumnDef::new("id", DataType::Int)]);
        let empty = Relation::with_chunk_capacity("empty", schema, 128);
        let mut stream = drive_streaming(
            empty.scan_snapshot(),
            vec![0],
            Vec::new(),
            ScanConfig::default().with_threads(4),
        );
        assert!(stream.next_batch().is_none());
        assert_eq!(stream.stats().rows_matched, 0);

        // Every block ruled out by its SMA: the stream yields nothing but still
        // counts the examined blocks.
        let mut rel = mixed_relation(4_000, 1_000);
        rel.enable_spill(&SpillPolicy::default()).expect("spill");
        let restrictions = vec![Restriction::between(0, 1_000_000i64, 2_000_000i64)];
        let mut stream = drive_streaming(
            rel.scan_snapshot(),
            vec![0],
            restrictions,
            ScanConfig::default().with_threads(2),
        );
        assert!(stream.next_batch().is_none());
        let stats = stream.stats();
        assert_eq!(stats.blocks_total, 4);
        assert_eq!(stats.blocks_skipped, 4);
        assert_eq!(rel.spill_store().unwrap().stats().block_reads, 0);
    });
}
