//! Differential test: the morsel-driven parallel scan must produce **byte-identical**
//! results to the single-threaded `scan_collect` reference — for random blocks,
//! random restriction sets, every tested thread count (1, 2, 8) and morsel size,
//! including NULLs, deleted rows and PSMA-narrowed ranges. The parallel path is the
//! bounded streaming pipeline, so the same cases also pin down that tight channel
//! capacities change neither results nor statistics and that the in-flight bound
//! holds.

use data_blocks::datablocks::{scan_collect, CmpOp, DataType, Restriction, Value};
use data_blocks::exec::{drive_streaming, RelationScanner, ScanConfig, ScanMode};
use data_blocks::storage::{ColumnDef, Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: &[usize] = &[1, 2, 8];
const MORSEL_SIZES: &[usize] = &[128, 1_000, 65_536];

/// Build a random relation: column 0 is a dense row id (so scan output maps back to
/// positions), plus a clustered int column (PSMA-friendly), a small-domain string
/// column, a double column and a nullable int column.
fn random_relation(rng: &mut StdRng, rows: usize, chunk_capacity: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int),
        ColumnDef::new("clustered", DataType::Int),
        ColumnDef::new("grp", DataType::Str),
        ColumnDef::new("price", DataType::Double),
        ColumnDef::nullable("maybe", DataType::Int),
    ]);
    let mut rel = Relation::with_chunk_capacity("t", schema, chunk_capacity);
    let cluster_width = rng.gen_range(50..400usize);
    let groups = rng.gen_range(2..8usize);
    for i in 0..rows {
        let maybe = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(0..50i64))
        };
        rel.insert(vec![
            Value::Int(i as i64),
            // ascending clusters so PSMAs genuinely narrow ranges
            Value::Int((i / cluster_width) as i64),
            Value::Str(format!("g{}", rng.gen_range(0..groups))),
            Value::Double(rng.gen_range(0.0..1_000.0)),
            maybe,
        ]);
    }
    rel
}

/// A random conjunction of 1–3 restrictions over the relation's columns.
fn random_restrictions(rng: &mut StdRng, rows: usize) -> Vec<Restriction> {
    let count = rng.gen_range(1..=3usize);
    let max_cluster = (rows / 50).max(1) as i64;
    (0..count)
        .map(|_| match rng.gen_range(0..6usize) {
            0 => {
                let lo = rng.gen_range(0..max_cluster);
                Restriction::between(1, lo, lo + rng.gen_range(0..3i64))
            }
            1 => {
                let ops = [
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ];
                Restriction::cmp(
                    1,
                    ops[rng.gen_range(0..ops.len())],
                    rng.gen_range(0..max_cluster),
                )
            }
            2 => Restriction::eq(2, format!("g{}", rng.gen_range(0..8usize))),
            3 => {
                let lo = rng.gen_range(0.0..900.0);
                Restriction::between(3, lo, lo + rng.gen_range(0.0..300.0))
            }
            4 => Restriction::IsNull { column: 4 },
            _ => Restriction::cmp(4, CmpOp::Le, rng.gen_range(0..50i64)),
        })
        .collect()
}

fn collect_ids(mut scanner: RelationScanner<'_>) -> Vec<i64> {
    let batch = scanner.collect_all();
    (0..batch.len())
        .map(|row| batch.value(row, 0).as_int().unwrap())
        .collect()
}

/// Parallel scans of a single frozen block reproduce `scan_collect`'s match
/// positions exactly, for every thread count and morsel size.
#[test]
fn parallel_block_scan_matches_scan_collect_reference() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xB10C_5CA9 ^ case);
        let rows = rng.gen_range(500..6_000usize);
        // one chunk; random deletions applied before freezing on some cases, after on others
        let mut rel = random_relation(&mut rng, rows, rows);
        let delete_after_freeze = rng.gen_bool(0.5);
        let victims: Vec<usize> = (0..rows).filter(|_| rng.gen_bool(0.05)).collect();
        if !delete_after_freeze {
            for &row in &victims {
                rel.delete(data_blocks::storage::RowId {
                    segment: data_blocks::storage::Segment::Hot(0),
                    row: row as u32,
                });
            }
        }
        rel.freeze_all();
        if delete_after_freeze {
            for &row in &victims {
                rel.delete(data_blocks::storage::RowId {
                    segment: data_blocks::storage::Segment::Cold(0),
                    row: row as u32,
                });
            }
        }
        assert_eq!(rel.cold_block_count(), 1);

        let restrictions = random_restrictions(&mut rng, rows);
        let block = &*rel.cold_block(0);
        let expected: Vec<i64> = scan_collect(
            block,
            &restrictions,
            data_blocks::datablocks::ScanOptions::default(),
        )
        .into_iter()
        .map(|pos| pos as i64)
        .collect();

        for &threads in THREAD_COUNTS {
            for &morsel_rows in MORSEL_SIZES {
                let config = ScanConfig::default()
                    .with_threads(threads)
                    .with_morsel_rows(morsel_rows);
                let scanner = RelationScanner::new(&rel, vec![0], restrictions.clone(), config);
                let got = collect_ids(scanner);
                assert_eq!(
                    got, expected,
                    "case {case}: threads {threads}, morsel_rows {morsel_rows}, \
                     restrictions {restrictions:?}"
                );
            }
        }
    }
}

/// On mixed hot/cold relations the parallel scan reproduces the serial scan
/// row-for-row in every scan mode.
#[test]
fn parallel_scan_matches_serial_on_mixed_relations() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x0D15_C0DE ^ case);
        let rows = rng.gen_range(1_500..8_000usize);
        let chunk = rng.gen_range(400..1_500usize);
        let mut rel = random_relation(&mut rng, rows, chunk);
        rel.freeze_full_chunks(); // cold blocks + hot tail
        let restrictions = random_restrictions(&mut rng, rows);

        for mode in [
            ScanMode::Jit,
            ScanMode::Vectorized { sarg: false },
            ScanMode::Vectorized { sarg: true },
        ] {
            let base = ScanConfig {
                mode,
                ..ScanConfig::default()
            };
            let expected = collect_ids(RelationScanner::new(
                &rel,
                vec![0],
                restrictions.clone(),
                base,
            ));
            for &threads in THREAD_COUNTS {
                for &morsel_rows in MORSEL_SIZES {
                    let config = base.with_threads(threads).with_morsel_rows(morsel_rows);
                    let got = collect_ids(RelationScanner::new(
                        &rel,
                        vec![0],
                        restrictions.clone(),
                        config,
                    ));
                    assert_eq!(
                        got, expected,
                        "case {case}: mode {mode:?}, threads {threads}, \
                         morsel_rows {morsel_rows}, restrictions {restrictions:?}"
                    );
                }
            }
        }
    }
}

/// Random mixed relations through the explicit streaming entry point, with a
/// deliberately tight channel: results byte-identical to serial for every thread
/// count and the reorder channel never buffers past its bound.
#[test]
fn streaming_scan_matches_serial_under_tight_channel_caps() {
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x057A_EA11 ^ case);
        let rows = rng.gen_range(1_500..6_000usize);
        let chunk = rng.gen_range(400..1_200usize);
        let mut rel = random_relation(&mut rng, rows, chunk);
        rel.freeze_full_chunks();
        let restrictions = random_restrictions(&mut rng, rows);
        let expected = collect_ids(RelationScanner::new(
            &rel,
            vec![0],
            restrictions.clone(),
            ScanConfig::default(),
        ));
        for &threads in THREAD_COUNTS {
            for cap in [1usize, 3] {
                let config = ScanConfig::default()
                    .with_threads(threads)
                    .with_morsel_rows(256)
                    .with_channel_cap(cap);
                let mut stream =
                    drive_streaming(rel.scan_snapshot(), vec![0], restrictions.clone(), config);
                let mut got = Vec::new();
                while let Some(batch) = stream.next_batch() {
                    for row in 0..batch.len() {
                        got.push(batch.value(row, 0).as_int().unwrap());
                    }
                }
                assert_eq!(
                    got, expected,
                    "case {case}: threads {threads}, cap {cap}, restrictions {restrictions:?}"
                );
                assert!(
                    stream.max_in_flight() <= cap,
                    "case {case}: threads {threads}, cap {cap}: high-water {}",
                    stream.max_in_flight()
                );
            }
        }
    }
}

/// PSMA narrowing stays on in the parallel path: a clustered equality restriction
/// scans far fewer rows than the block holds, and results still match the reference.
#[test]
fn parallel_scan_with_psma_narrowed_ranges() {
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int),
        ColumnDef::new("clustered", DataType::Int),
    ]);
    let rows = 65_536usize;
    let mut rel = Relation::with_chunk_capacity("t", schema, rows);
    for i in 0..rows {
        rel.insert(vec![Value::Int(i as i64), Value::Int((i / 256) as i64)]);
    }
    rel.freeze_all();
    let restrictions = vec![Restriction::eq(1, 100i64)];

    let expected: Vec<i64> = scan_collect(
        &rel.cold_block(0),
        &restrictions,
        data_blocks::datablocks::ScanOptions::default(),
    )
    .into_iter()
    .map(|pos| pos as i64)
    .collect();
    assert_eq!(expected.len(), 256);

    for &threads in THREAD_COUNTS {
        let config = ScanConfig::default().with_threads(threads);
        let mut scanner = RelationScanner::new(&rel, vec![0], restrictions.clone(), config);
        let batch = scanner.collect_all();
        let got: Vec<i64> = (0..batch.len())
            .map(|row| batch.value(row, 0).as_int().unwrap())
            .collect();
        assert_eq!(got, expected, "threads {threads}");
        // the PSMA narrowed the scan to (roughly) the cluster, in parallel too
        assert!(
            scanner.stats().rows_scanned <= 1_024,
            "threads {threads}: scanned {} rows of {rows}",
            scanner.stats().rows_scanned
        );
    }
}
