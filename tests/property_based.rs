//! Property-based tests over the core data structures: compression roundtrips, PSMA
//! coverage, SIMD kernel equivalence and scan correctness against a brute-force
//! oracle.
//!
//! The original version of this file used `proptest`; the build environment is
//! offline, so the same properties are exercised with a seeded in-repo generator
//! (`rand` stand-in crate) running a fixed number of random cases per property.
//! Failures print the offending case seed, so a reproduction is one seed away.

use data_blocks::datablocks::builder::freeze;
use data_blocks::datablocks::{
    scan_collect, CmpOp, Column, ColumnData, Psma, Restriction, ScanOptions, Value,
};
use data_blocks::dbsimd::{find_matches, reduce_matches, IsaLevel, RangePredicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn case_rng(property: &str, case: u64) -> StdRng {
    // Mix the property name into the seed so properties draw distinct streams.
    let tag: u64 = property.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    StdRng::seed_from_u64(tag ^ case)
}

fn int_vec(rng: &mut StdRng, len_lo: usize, len_hi: usize, lo: i64, hi: i64) -> Vec<i64> {
    let len = rng.gen_range(len_lo..len_hi);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Freezing and point access are lossless for arbitrary integer columns.
#[test]
fn compression_roundtrip_ints() {
    for case in 0..CASES {
        let mut rng = case_rng("roundtrip_ints", case);
        let values = int_vec(&mut rng, 1, 2_000, -1_000_000, 1_000_000);
        let column = Column::from_data(ColumnData::Int(values.clone()));
        let block = freeze(&[column]);
        for (row, expected) in values.iter().enumerate() {
            assert_eq!(block.get(row, 0), Value::Int(*expected), "case {case}");
        }
    }
}

/// Freezing and point access are lossless for arbitrary string columns.
#[test]
fn compression_roundtrip_strings() {
    for case in 0..CASES {
        let mut rng = case_rng("roundtrip_strings", case);
        let len = rng.gen_range(1..500usize);
        let values: Vec<String> = (0..len)
            .map(|_| {
                let chars = rng.gen_range(0..=12usize);
                (0..chars)
                    .map(|_| rng.gen_range(b'a'..=b'z') as char)
                    .collect()
            })
            .collect();
        let column = Column::from_data(ColumnData::Str(values.clone()));
        let block = freeze(&[column]);
        for (row, expected) in values.iter().enumerate() {
            assert_eq!(
                block.get(row, 0),
                Value::Str(expected.clone()),
                "case {case}"
            );
        }
    }
}

/// The flat serialization is a faithful roundtrip.
#[test]
fn layout_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng("layout_roundtrip", case);
        let values = int_vec(&mut rng, 1, 1_500, 0, 50_000);
        let block = freeze(&[Column::from_data(ColumnData::Int(values.clone()))]);
        let restored = data_blocks::datablocks::layout::from_bytes(
            &data_blocks::datablocks::layout::to_bytes(&block),
        )
        .unwrap();
        for row in 0..values.len() {
            assert_eq!(restored.get(row, 0), block.get(row, 0), "case {case}");
        }
    }
}

/// Every position of a probed value lies inside the PSMA range.
#[test]
fn psma_ranges_cover_all_occurrences() {
    for case in 0..CASES {
        let mut rng = case_rng("psma_cover", case);
        let keys = int_vec(&mut rng, 1, 3_000, 0, 10_000);
        let probe = rng.gen_range(0..10_000i64);
        let psma = Psma::build(&keys).unwrap();
        let range = psma.probe_eq(probe);
        for (pos, &k) in keys.iter().enumerate() {
            if k == probe {
                assert!(
                    (pos as u32) >= range.begin && (pos as u32) < range.end,
                    "case {case}: position {pos} of probe {probe} outside {range:?}"
                );
            }
        }
    }
}

/// SIMD find/reduce kernels agree with the scalar kernels for every ISA level.
#[test]
fn simd_kernels_match_scalar() {
    for case in 0..CASES {
        let mut rng = case_rng("simd_match_scalar", case);
        let len = rng.gen_range(0..3_000usize);
        let data: Vec<u32> = (0..len).map(|_| rng.gen_range(0..100_000u32)).collect();
        let mut lo = rng.gen_range(0..100_000u32);
        let mut hi = rng.gen_range(0..100_000u32);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let pred = RangePredicate::between(lo, hi);
        let mut expected = Vec::new();
        find_matches(IsaLevel::Scalar, &data, &pred, 0, &mut expected);
        for isa in IsaLevel::available() {
            let mut got = Vec::new();
            find_matches(isa, &data, &pred, 0, &mut got);
            assert_eq!(got, expected, "case {case} isa {isa}");

            let mut all: Vec<u32> = (0..data.len() as u32).collect();
            let mut all_expected = all.clone();
            reduce_matches(IsaLevel::Scalar, &data, &pred, 0, &mut all_expected);
            reduce_matches(isa, &data, &pred, 0, &mut all);
            assert_eq!(all, all_expected, "case {case} isa {isa}");
        }
    }
}

/// Block scans with arbitrary conjunctive restrictions match a brute-force oracle,
/// regardless of SMA/PSMA usage.
#[test]
fn block_scan_matches_oracle() {
    for case in 0..CASES {
        let mut rng = case_rng("scan_oracle", case);
        let a = int_vec(&mut rng, 100, 2_000, 0, 500);
        let lo = rng.gen_range(0..500i64);
        let width = rng.gen_range(0..200i64);
        let eq_choice = rng.gen_range(0..4usize);
        let n = a.len();
        let b: Vec<String> = (0..n).map(|i| format!("s{}", i % 4)).collect();
        let block = freeze(&[
            Column::from_data(ColumnData::Int(a.clone())),
            Column::from_data(ColumnData::Str(b.clone())),
        ]);
        let restrictions = vec![
            Restriction::between(0, lo, lo + width),
            Restriction::eq(1, format!("s{eq_choice}")),
        ];
        let expected: Vec<u32> = (0..n)
            .filter(|&i| a[i] >= lo && a[i] <= lo + width && b[i] == format!("s{eq_choice}"))
            .map(|i| i as u32)
            .collect();
        for options in [
            ScanOptions::default(),
            ScanOptions {
                use_sma: false,
                use_psma: false,
                ..ScanOptions::default()
            },
            ScanOptions {
                vector_size: 64,
                ..ScanOptions::default()
            },
        ] {
            assert_eq!(
                scan_collect(&block, &restrictions, options),
                expected,
                "case {case} options {options:?}"
            );
        }
    }
}

/// Scans never return NULL rows for value predicates, and IS NULL / IS NOT NULL
/// partition the block.
#[test]
fn null_semantics_partition_rows() {
    for case in 0..CASES {
        let mut rng = case_rng("null_partition", case);
        let len = rng.gen_range(50..1_000usize);
        let raw: Vec<Option<i64>> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Some(rng.gen_range(0..100i64))
                } else {
                    None
                }
            })
            .collect();
        let mut column = Column::new(data_blocks::datablocks::DataType::Int);
        for v in &raw {
            column.push(match v {
                Some(x) => Value::Int(*x),
                None => Value::Null,
            });
        }
        let block = freeze(&[column]);
        let nulls = scan_collect(
            &block,
            &[Restriction::IsNull { column: 0 }],
            ScanOptions::default(),
        );
        let not_nulls = scan_collect(
            &block,
            &[Restriction::IsNotNull { column: 0 }],
            ScanOptions::default(),
        );
        assert_eq!(nulls.len() + not_nulls.len(), raw.len(), "case {case}");
        let ge_zero = scan_collect(
            &block,
            &[Restriction::cmp(0, CmpOp::Ge, 0i64)],
            ScanOptions::default(),
        );
        assert_eq!(ge_zero.len(), not_nulls.len(), "case {case}");
    }
}

/// Radix partition assignment for parallel pipeline breakers is a pure function of
/// the key values: bounded by the partition count, identical on every evaluation
/// (hence identical whatever the thread count or morsel schedule), and
/// non-degenerate over random keys.
#[test]
fn radix_partition_assignment_is_stable() {
    use data_blocks::exec::{radix_partition, RADIX_PARTITIONS};
    for case in 0..CASES {
        let mut rng = case_rng("radix_partition", case);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let arity = rng.gen_range(1..=3usize);
            let key: Vec<Value> = (0..arity)
                .map(|_| match rng.gen_range(0..4usize) {
                    0 => Value::Int(rng.gen_range(-1_000..1_000i64)),
                    1 => Value::Double(rng.gen_range(-10.0..10.0)),
                    2 => Value::Str(format!("s{}", rng.gen_range(0..500u32))),
                    _ => Value::Null,
                })
                .collect();
            let partition = radix_partition(&key);
            assert!(partition < RADIX_PARTITIONS, "case {case}");
            for _ in 0..3 {
                assert_eq!(
                    radix_partition(&key),
                    partition,
                    "case {case}: partition of {key:?} must be stable"
                );
            }
            seen.insert(partition);
        }
        assert!(
            seen.len() > 1,
            "case {case}: random keys all landed in one partition"
        );
    }
}

/// Merging the per-worker aggregation partitions in any order yields identical
/// results: feeding the same batches in random order, at different thread counts,
/// produces byte-identical aggregates (for order-insensitive aggregate functions).
#[test]
fn parallel_agg_invariant_under_merge_and_batch_order() {
    use data_blocks::datablocks::DataType;
    use data_blocks::exec::{AggFunc, AggSpec, Batch, Expr, Operator, ParallelHashAggregateOp};
    for case in 0..16u64 {
        let mut rng = case_rng("agg_merge_order", case);
        let groups = rng.gen_range(1..40i64);
        let batch_count = rng.gen_range(1..12usize);
        let batches: Vec<Batch> = (0..batch_count)
            .map(|_| {
                let rows: Vec<Vec<Value>> = (0..rng.gen_range(1..200usize))
                    .map(|_| {
                        let g = if rng.gen_bool(0.1) {
                            Value::Null
                        } else {
                            Value::Int(rng.gen_range(0..groups))
                        };
                        vec![g, Value::Int(rng.gen_range(-500..500i64))]
                    })
                    .collect();
                Batch::from_rows(&[DataType::Int, DataType::Int], &rows)
            })
            .collect();
        let aggregates = vec![
            AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
            AggSpec::new(AggFunc::Sum, Expr::col(1), DataType::Int),
            AggSpec::new(AggFunc::Min, Expr::col(1), DataType::Int),
            AggSpec::new(AggFunc::Max, Expr::col(1), DataType::Int),
        ];
        let run = |order: &[usize], threads: usize| -> Batch {
            let shuffled: Vec<Batch> = order.iter().map(|&i| batches[i].clone()).collect();
            ParallelHashAggregateOp::over_batches(
                shuffled,
                threads,
                vec![Expr::col(0)],
                vec![DataType::Int],
                aggregates.clone(),
            )
            .collect_all()
        };
        let identity: Vec<usize> = (0..batch_count).collect();
        let reference = run(&identity, 1);
        for threads in [1usize, 2, 4, 8] {
            // Fisher–Yates shuffle with the case RNG (the rand stand-in has no
            // shuffle helper)
            let mut order = identity.clone();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let got = run(&order, threads);
            assert_eq!(got.len(), reference.len(), "case {case} threads {threads}");
            for row in 0..reference.len() {
                assert_eq!(
                    got.row(row),
                    reference.row(row),
                    "case {case} threads {threads} row {row}"
                );
            }
        }
    }
}
