//! Property-based tests (proptest) over the core data structures: compression
//! roundtrips, PSMA coverage, SIMD kernel equivalence and scan correctness against a
//! brute-force oracle.

use data_blocks::datablocks::builder::freeze;
use data_blocks::datablocks::{
    scan_collect, CmpOp, Column, ColumnData, Psma, Restriction, ScanOptions, Value,
};
use data_blocks::dbsimd::{find_matches, reduce_matches, IsaLevel, RangePredicate};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Freezing and point access are lossless for arbitrary integer columns.
    #[test]
    fn compression_roundtrip_ints(values in prop::collection::vec(-1_000_000i64..1_000_000, 1..2_000)) {
        let column = Column::from_data(ColumnData::Int(values.clone()));
        let block = freeze(&[column]);
        for (row, expected) in values.iter().enumerate() {
            prop_assert_eq!(block.get(row, 0), Value::Int(*expected));
        }
    }

    /// Freezing and point access are lossless for arbitrary string columns.
    #[test]
    fn compression_roundtrip_strings(values in prop::collection::vec("[a-z]{0,12}", 1..500)) {
        let column = Column::from_data(ColumnData::Str(values.clone()));
        let block = freeze(&[column]);
        for (row, expected) in values.iter().enumerate() {
            prop_assert_eq!(block.get(row, 0), Value::Str(expected.clone()));
        }
    }

    /// The flat serialization is a faithful roundtrip.
    #[test]
    fn layout_roundtrip(values in prop::collection::vec(0i64..50_000, 1..1_500)) {
        let block = freeze(&[Column::from_data(ColumnData::Int(values.clone()))]);
        let restored = data_blocks::datablocks::layout::from_bytes(
            &data_blocks::datablocks::layout::to_bytes(&block),
        ).unwrap();
        for row in 0..values.len() {
            prop_assert_eq!(restored.get(row, 0), block.get(row, 0));
        }
    }

    /// Every position of a probed value lies inside the PSMA range.
    #[test]
    fn psma_ranges_cover_all_occurrences(
        keys in prop::collection::vec(0i64..10_000, 1..3_000),
        probe in 0i64..10_000,
    ) {
        let psma = Psma::build(&keys).unwrap();
        let range = psma.probe_eq(probe);
        for (pos, &k) in keys.iter().enumerate() {
            if k == probe {
                prop_assert!((pos as u32) >= range.begin && (pos as u32) < range.end);
            }
        }
    }

    /// SIMD find/reduce kernels agree with the scalar kernels for every ISA level.
    #[test]
    fn simd_kernels_match_scalar(
        data in prop::collection::vec(0u32..100_000, 0..3_000),
        mut lo in 0u32..100_000,
        mut hi in 0u32..100_000,
    ) {
        if lo > hi { std::mem::swap(&mut lo, &mut hi); }
        let pred = RangePredicate::between(lo, hi);
        let mut expected = Vec::new();
        find_matches(IsaLevel::Scalar, &data, &pred, 0, &mut expected);
        for isa in IsaLevel::available() {
            let mut got = Vec::new();
            find_matches(isa, &data, &pred, 0, &mut got);
            prop_assert_eq!(&got, &expected);

            let mut all: Vec<u32> = (0..data.len() as u32).collect();
            let mut all_expected = all.clone();
            reduce_matches(IsaLevel::Scalar, &data, &pred, 0, &mut all_expected);
            reduce_matches(isa, &data, &pred, 0, &mut all);
            prop_assert_eq!(&all, &all_expected);
        }
    }

    /// Block scans with arbitrary conjunctive restrictions match a brute-force oracle,
    /// regardless of SMA/PSMA usage.
    #[test]
    fn block_scan_matches_oracle(
        a in prop::collection::vec(0i64..500, 100..2_000),
        lo in 0i64..500,
        width in 0i64..200,
        eq_choice in 0usize..4,
    ) {
        let n = a.len();
        let b: Vec<String> = (0..n).map(|i| format!("s{}", i % 4)).collect();
        let block = freeze(&[
            Column::from_data(ColumnData::Int(a.clone())),
            Column::from_data(ColumnData::Str(b.clone())),
        ]);
        let restrictions = vec![
            Restriction::between(0, lo, lo + width),
            Restriction::eq(1, format!("s{eq_choice}")),
        ];
        let expected: Vec<u32> = (0..n)
            .filter(|&i| a[i] >= lo && a[i] <= lo + width && b[i] == format!("s{eq_choice}"))
            .map(|i| i as u32)
            .collect();
        for options in [
            ScanOptions::default(),
            ScanOptions { use_sma: false, use_psma: false, ..ScanOptions::default() },
            ScanOptions { vector_size: 64, ..ScanOptions::default() },
        ] {
            prop_assert_eq!(&scan_collect(&block, &restrictions, options), &expected);
        }
    }

    /// Scans never return NULL rows for value predicates, and IS NULL / IS NOT NULL
    /// partition the block.
    #[test]
    fn null_semantics_partition_rows(
        raw in prop::collection::vec(prop::option::of(0i64..100), 50..1_000),
    ) {
        let mut column = Column::new(data_blocks::datablocks::DataType::Int);
        for v in &raw {
            column.push(match v { Some(x) => Value::Int(*x), None => Value::Null });
        }
        let block = freeze(&[column]);
        let nulls = scan_collect(&block, &[Restriction::IsNull { column: 0 }], ScanOptions::default());
        let not_nulls = scan_collect(&block, &[Restriction::IsNotNull { column: 0 }], ScanOptions::default());
        prop_assert_eq!(nulls.len() + not_nulls.len(), raw.len());
        let ge_zero = scan_collect(&block, &[Restriction::cmp(0, CmpOp::Ge, 0i64)], ScanOptions::default());
        prop_assert_eq!(ge_zero.len(), not_nulls.len());
    }
}
