//! Concurrent query-service stress: K sessions race TPC-H Q1/Q3/Q6 against one
//! shared, thrash-cache spilled database under a shared admission budget.
//!
//! Pinned here:
//! * every concurrent result is **byte-identical** to the serial answer (the
//!   sessions plan at one thread, so no reassociation slack is needed);
//! * the aggregate block-cache high-water mark across all relations stays
//!   within the cache share the service budget derives
//!   ([`derive_spill_policy`]);
//! * a session whose budget exceeds the whole pool is rejected loudly with
//!   [`Error::OverBudget`] — never queued, never deadlocked;
//! * the whole race finishes under a watchdog, so an admission-control
//!   regression that deadlocks shows up as a test failure, not a hung CI job.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use data_blocks::exec::{Batch, ScanConfig};
use data_blocks::query::service::derive_spill_policy;
use data_blocks::query::{Connect, Error, QueryService, ServiceConfig};
use data_blocks::storage::SpillPolicy;
use data_blocks::workloads::tpch::{query_sql, TpchDb};

const SESSIONS: usize = 8;
const ROUNDS: usize = 3;
const QUERIES: &[&str] = &["Q1", "Q3", "Q6"];
const TOTAL_BUDGET: usize = 64 << 20;
const WATCHDOG: Duration = Duration::from_secs(300);

fn assert_batches_identical(label: &str, expected: &Batch, actual: &Batch) {
    assert_eq!(expected.len(), actual.len(), "{label}: row count");
    for row in 0..expected.len() {
        assert_eq!(
            expected.row(row),
            actual.row(row),
            "{label} row {row}: values differ"
        );
    }
}

#[test]
fn concurrent_sessions_match_serial_within_budget() {
    // A spilled database whose per-relation cache capacity is derived from the
    // service budget; every block read during the race goes through these
    // caches.
    let mut db = TpchDb::generate_with_chunk(0.02, 2_048);
    db.freeze();
    let relation_count = db.db.relation_names().len();
    let policy = derive_spill_policy(SpillPolicy::default(), TOTAL_BUDGET, relation_count);
    let cache_share_per_store = policy.cache_capacity_bytes;
    db.db.enable_spill(policy).expect("enable spill");

    // Serial reference answers, straight through a stand-alone session.
    let serial_config = ScanConfig::default().with_threads(1);
    let serial: Vec<(String, Batch)> = QUERIES
        .iter()
        .map(|&name| {
            let batch = db
                .db
                .connect()
                .with_config(serial_config)
                .sql(query_sql(name))
                .and_then(|stream| stream.collect())
                .unwrap_or_else(|err| panic!("serial {name}: {err}"));
            (name.to_string(), batch)
        })
        .collect();

    let db = Arc::new(db.db);
    let service = Arc::new(QueryService::new(
        Arc::clone(&db),
        serial_config,
        ServiceConfig {
            max_concurrent: 4,
            total_budget_bytes: TOTAL_BUDGET,
        },
    ));

    // K sessions × R rounds over the query mix, every result shipped back for
    // comparison. The watchdog turns a deadlocked admission queue into a loud
    // failure instead of a hung test.
    let (tx, rx) = mpsc::channel::<(usize, String, Result<Batch, Error>)>();
    let mut handles = Vec::new();
    for k in 0..SESSIONS {
        let service = Arc::clone(&service);
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            // Budgets differ per session so grants fragment the pool unevenly.
            let budget = (TOTAL_BUDGET / SESSIONS) * (1 + k % 3);
            let session = service.session(budget);
            for round in 0..ROUNDS {
                let name = QUERIES[(k + round) % QUERIES.len()];
                let result = session
                    .sql(query_sql(name))
                    .and_then(|stream| stream.collect());
                tx.send((k, name.to_string(), result)).expect("send result");
            }
        }));
    }
    drop(tx);

    let mut received = 0usize;
    while let Ok((k, name, result)) = rx.recv_timeout(WATCHDOG) {
        received += 1;
        let batch = result.unwrap_or_else(|err| panic!("session {k} {name}: {err}"));
        let (_, expected) = serial
            .iter()
            .find(|(serial_name, _)| *serial_name == name)
            .expect("query in serial set");
        assert_batches_identical(&format!("session {k} {name}"), expected, &batch);
    }
    assert_eq!(
        received,
        SESSIONS * ROUNDS,
        "not every query finished before the watchdog fired — admission deadlock?"
    );
    for handle in handles {
        handle.join().expect("session thread panicked");
    }

    // The aggregate cache high-water across every relation's store must stay
    // within the cache share the budget derivation handed out. (Per store the
    // CLOCK cache can transiently overshoot its capacity while batches hold
    // pins, which is exactly why `derive_spill_policy` only spends half the
    // budget on caches.)
    let mut aggregate_high_water = 0usize;
    for rel in db.relations() {
        if let Some(store) = rel.spill_store() {
            let high_water = store.cache_high_water_bytes();
            assert!(
                high_water <= 2 * cache_share_per_store,
                "{}: cache high-water {high_water} more than doubled its {cache_share_per_store} byte share",
                rel.name(),
            );
            aggregate_high_water += high_water;
        }
    }
    assert!(
        aggregate_high_water > 0,
        "the race never touched a block cache — the database did not spill"
    );
    assert!(
        aggregate_high_water <= TOTAL_BUDGET,
        "aggregate cache high-water {aggregate_high_water} exceeds the service budget {TOTAL_BUDGET}"
    );
}

#[test]
fn over_budget_sessions_fail_loudly_and_never_queue() {
    let mut db = TpchDb::generate_with_chunk(0.005, 2_048);
    db.freeze();
    let service = QueryService::new(
        Arc::new(db.db),
        ScanConfig::default().with_threads(1),
        ServiceConfig {
            max_concurrent: 2,
            total_budget_bytes: 8 << 20,
        },
    );

    // Saturate the pool from one thread, then ask for more than the whole
    // pool: the rejection must come back immediately even though the pool is
    // busy (an over-budget query must never wait on the queue).
    let greedy = service.session(16 << 20);
    let err = greedy.sql(query_sql("Q6")).expect_err("over budget");
    match err {
        Error::OverBudget {
            requested_bytes,
            total_bytes,
        } => {
            assert_eq!(requested_bytes, 16 << 20);
            assert_eq!(total_bytes, 8 << 20);
        }
        other => panic!("expected OverBudget, got: {other}"),
    }

    // A fitting session still gets through afterwards.
    let ok = service.session(4 << 20);
    let batch = ok
        .sql(query_sql("Q6"))
        .and_then(|stream| stream.collect())
        .expect("within budget");
    assert_eq!(batch.len(), 1);
}
