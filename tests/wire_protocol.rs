//! Loopback integration suite for the wire protocol (`query::net`): a real
//! `WireServer` over a TPC-H database, exercised by real `WireClient`s on
//! 127.0.0.1.
//!
//! Pinned here:
//! * every `QUERY_SUBSET` result that crosses the wire matches the in-process
//!   answer across thread counts and cache regimes (in-memory and
//!   thrash-spilled): **byte-identical** at one thread — the batch codec
//!   loses nothing, every `f64` travels as raw bits — and equal up to the
//!   engine's own parallel-merge reassociation at four;
//! * results are **streamed**: server-side buffering never exceeds the
//!   connection's credit window (asserted via `peak_unacked_batches`), even
//!   against a deliberately slow client;
//! * malformed, truncated and oversized frames are answered with a loud
//!   `PROTOCOL` error frame and kill only their own connection — the server
//!   and its other connections keep working;
//! * auth failures and over-budget handshakes are refused with typed error
//!   frames carrying the pinned `Display` messages;
//! * a mid-stream client disconnect returns the session's admission budget to
//!   the pool deterministically (polled via `QueryService::stats`);
//! * `CANCEL` stops a query mid-scan with the typed `CANCELLED` error frame
//!   and the **same connection** then runs the next query successfully;
//! * idle connections are reaped, graceful shutdown drains, and every test
//!   runs under a watchdog so a protocol deadlock fails loudly instead of
//!   hanging CI.

use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use data_blocks::datablocks::Value;
use data_blocks::exec::{Batch, ScanConfig};
use data_blocks::query::net::frame::{encode_query, write_frame, FrameType, QueryKind, WIRE_MAGIC};
use data_blocks::query::net::{
    ClientConfig, ClientError, ErrorCode, WireClient, WireConfig, WireServer,
};
use data_blocks::query::{QueryService, ServiceConfig};
use data_blocks::storage::SpillPolicy;
use data_blocks::workloads::tpch::{query_sql, TpchDb, QUERY_SUBSET};

const AUTH: &str = "tpch-wire-secret";
const WATCHDOG: Duration = Duration::from_secs(300);
const BUDGET: u64 = 32 << 20;

/// Run `body` on a helper thread under a watchdog: a hang fails loudly.
fn with_watchdog(body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel::<()>();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog fired after {WATCHDOG:?}: wire test hung")
        }
    }
}

fn server_config() -> WireConfig {
    WireConfig {
        auth_token: AUTH.into(),
        ..WireConfig::default()
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        auth_token: AUTH.into(),
        budget_bytes: BUDGET,
        window: 4,
    }
}

/// A service + wire server over a freshly generated TPC-H database.
/// `thrash` additionally spills every relation behind a one-byte block cache,
/// so every scan goes through the cold-read path.
fn serve_tpch(threads: usize, thrash: bool) -> (Arc<QueryService>, WireServer) {
    let mut db = TpchDb::generate_with_chunk(0.02, 2_048);
    db.freeze();
    if thrash {
        db.db
            .enable_spill(SpillPolicy::with_cache_capacity(1))
            .expect("enable spill");
    }
    let service = Arc::new(QueryService::new(
        Arc::new(db.db),
        ScanConfig::default().with_threads(threads),
        ServiceConfig::default(),
    ));
    let server = WireServer::serve(Arc::clone(&service), "127.0.0.1:0", server_config())
        .expect("bind wire server");
    (service, server)
}

/// Same comparison contract as `ir_differential` / `sql_frontend`:
/// byte-identity when `exact` (serial plans are fully deterministic), doubles
/// equal up to parallel-merge reassociation (relative 1e-9) otherwise.
fn assert_batches_agree(label: &str, expected: &Batch, actual: &Batch, exact: bool) {
    assert_eq!(expected.len(), actual.len(), "{label}: row count");
    assert_eq!(expected.types(), actual.types(), "{label}: schema");
    for row in 0..expected.len() {
        let (e, a) = (expected.row(row), actual.row(row));
        for (col, (ev, av)) in e.iter().zip(&a).enumerate() {
            match (ev, av) {
                (Value::Double(x), Value::Double(y)) if !exact => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() / scale < 1e-9,
                        "{label} row {row} col {col}: {x} vs {y}"
                    );
                }
                _ => assert_eq!(ev, av, "{label} row {row} col {col}"),
            }
        }
    }
}

/// The tentpole fidelity pin: all five reproduced TPC-H queries over the wire
/// against the in-process session answer — at one and four threads, in memory
/// and thrash-spilled, all over one connection per regime. Serial results are
/// byte-identical (so the batch codec provably loses nothing — every `f64`
/// crosses as raw bits); four-thread aggregates agree up to the engine's own
/// parallel-merge reassociation, exactly like the in-process differential
/// suites.
#[test]
fn wire_results_match_in_process_across_threads_and_regimes() {
    with_watchdog(|| {
        for thrash in [false, true] {
            for threads in [1usize, 4] {
                let (service, server) = serve_tpch(threads, thrash);
                let mut client =
                    WireClient::connect(server.local_addr(), &client_config()).expect("handshake");
                for &name in QUERY_SUBSET {
                    let label = format!(
                        "{name} threads={threads} {}",
                        if thrash { "thrash" } else { "memory" }
                    );
                    let expected = service
                        .session(BUDGET as usize)
                        .sql(query_sql(name))
                        .and_then(|stream| stream.collect())
                        .unwrap_or_else(|err| panic!("{label} in-process: {err}"));
                    let actual = client
                        .query_sql(query_sql(name))
                        .and_then(|stream| stream.collect())
                        .unwrap_or_else(|err| panic!("{label} wire: {err}"));
                    assert_batches_agree(&label, &expected, &actual, threads == 1);
                }
                drop(client);
                server.shutdown();
            }
        }
    });
}

/// Protocol robustness: garbage magic, an oversized length prefix, a corrupt
/// checksum and a truncated frame each kill only their own connection — with
/// a `PROTOCOL` error frame where one can still be delivered — while the
/// server keeps serving well-behaved clients.
#[test]
fn malformed_frames_kill_one_connection_not_the_server() {
    with_watchdog(|| {
        let (_service, server) = serve_tpch(1, false);
        let addr = server.local_addr();

        // Garbage magic straight at the handshake.
        {
            let mut client = WireClient::connect(addr, &client_config()).expect("handshake");
            client.send_raw(b"XXXXnot a frame at all").expect("send");
            let (ty, payload) = client.read_raw_frame().expect("protocol error frame");
            assert_eq!(ty, FrameType::Error);
            assert_eq!(payload[0], ErrorCode::Protocol as u8);
        }

        // An oversized length prefix must be refused before allocation.
        {
            let mut client = WireClient::connect(addr, &client_config()).expect("handshake");
            let mut frame = Vec::new();
            frame.extend_from_slice(&WIRE_MAGIC);
            frame.push(FrameType::Query as u8);
            frame.extend_from_slice(&u32::MAX.to_le_bytes());
            client.send_raw(&frame).expect("send");
            let (ty, payload) = client.read_raw_frame().expect("protocol error frame");
            assert_eq!(ty, FrameType::Error);
            assert_eq!(payload[0], ErrorCode::Protocol as u8);
        }

        // A flipped payload bit fails the frame checksum.
        {
            let mut client = WireClient::connect(addr, &client_config()).expect("handshake");
            let mut frame = Vec::new();
            write_frame(
                &mut frame,
                FrameType::Query,
                &encode_query(QueryKind::Sql, "SELECT count(*) FROM lineitem"),
            )
            .expect("encode");
            let payload_byte = frame.len() - 12;
            frame[payload_byte] ^= 0x01;
            client.send_raw(&frame).expect("send");
            let (ty, payload) = client.read_raw_frame().expect("protocol error frame");
            assert_eq!(ty, FrameType::Error);
            assert_eq!(payload[0], ErrorCode::Protocol as u8);
        }

        // A frame cut off mid-payload followed by a hangup: the server just
        // drops the connection (nobody is left to answer).
        {
            let client = WireClient::connect(addr, &client_config()).expect("handshake");
            let mut frame = Vec::new();
            write_frame(
                &mut frame,
                FrameType::Query,
                &encode_query(QueryKind::Sql, "SELECT count(*) FROM lineitem"),
            )
            .expect("encode");
            client.send_raw(&frame[..frame.len() / 2]).expect("send");
            drop(client);
        }

        // The server survived all four: a fresh client still gets answers.
        let mut client = WireClient::connect(addr, &client_config()).expect("handshake");
        let batch = client
            .query_sql(query_sql("Q6"))
            .and_then(|stream| stream.collect())
            .expect("query after abuse");
        assert_eq!(batch.len(), 1);
        assert!(server.stats().protocol_errors >= 3, "{:?}", server.stats());
        server.shutdown();
    });
}

/// A wrong auth token is refused with a typed `AUTH` error frame.
#[test]
fn bad_auth_token_is_refused() {
    with_watchdog(|| {
        let (_service, server) = serve_tpch(1, false);
        let config = ClientConfig {
            auth_token: "wrong".into(),
            ..client_config()
        };
        match WireClient::connect(server.local_addr(), &config) {
            Err(ClientError::Remote { code, message }) => {
                assert_eq!(code, ErrorCode::Auth);
                assert_eq!(message, "authentication failed");
            }
            other => panic!("expected auth refusal, got {other:?}"),
        }
        server.shutdown();
    });
}

/// A handshake budget larger than the service pool is refused with the same
/// typed admission error (and pinned message) the in-process API raises.
#[test]
fn over_budget_handshake_is_refused() {
    with_watchdog(|| {
        let (service, server) = serve_tpch(1, false);
        let total = service.config().total_budget_bytes;
        let config = ClientConfig {
            budget_bytes: (total as u64) * 2,
            ..client_config()
        };
        match WireClient::connect(server.local_addr(), &config) {
            Err(ClientError::Remote { code, message }) => {
                assert_eq!(code, ErrorCode::OverBudget);
                assert_eq!(
                    message,
                    format!(
                        "admission error: query budget {} bytes exceeds the service budget {total} bytes",
                        total * 2
                    )
                );
            }
            other => panic!("expected admission refusal, got {other:?}"),
        }
        server.shutdown();
    });
}

/// A client that vanishes mid-result-stream (no GOODBYE, frames still in
/// flight) must not leak its admission grant: the server closes the session
/// and the pool recovers, observably via `QueryService::stats`.
#[test]
fn mid_stream_disconnect_releases_budget() {
    with_watchdog(|| {
        let (service, server) = serve_tpch(1, false);
        {
            let mut client =
                WireClient::connect(server.local_addr(), &client_config()).expect("handshake");
            let mut stream = client
                .query_sql("SELECT l_quantity FROM lineitem")
                .expect("query");
            let first = stream.next_batch().expect("first batch");
            assert!(first.is_some(), "scan must produce at least one batch");
            assert!(service.stats().granted_bytes > 0, "query must hold budget");
            // Dropping the stream mid-flight poisons the client; dropping the
            // poisoned client hangs up without GOODBYE.
        }
        let deadline = Instant::now() + WATCHDOG;
        loop {
            let stats = service.stats();
            if stats.granted_bytes == 0 && stats.running == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "budget never returned after disconnect: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    });
}

/// Out-of-band cancellation mid-scan: the stream terminates with the typed
/// `CANCELLED` error frame (pinned message), the connection survives, and the
/// very same connection then runs the next query to completion.
#[test]
fn cancel_mid_scan_is_typed_and_connection_survives() {
    with_watchdog(|| {
        let (service, server) = serve_tpch(4, false);
        let config = ClientConfig {
            // A tiny window guarantees the query is still mid-scan (blocked
            // on credits) when the cancel lands, making the test deterministic.
            window: 2,
            ..client_config()
        };
        let mut client = WireClient::connect(server.local_addr(), &config).expect("handshake");
        let canceller = client.canceller();
        let mut stream = client
            .query_sql("SELECT l_quantity, l_extendedprice FROM lineitem")
            .expect("query");
        // Receiving a batch proves the query is executing (the cancel cannot
        // race the session's token re-arm).
        stream.next_batch().expect("first batch");
        canceller.cancel();
        let err = loop {
            match stream.next_batch() {
                Ok(Some(_)) => continue, // batches already in flight
                Ok(None) => panic!("query finished despite cancel"),
                Err(err) => break err,
            }
        };
        match err {
            ClientError::Remote { code, message } => {
                assert_eq!(code, ErrorCode::Cancelled);
                assert_eq!(message, "query cancelled");
            }
            other => panic!("expected remote cancellation, got {other:?}"),
        }
        drop(stream);

        // Same connection, next query: the session re-arms and serves it.
        let batch = client
            .query_sql(query_sql("Q6"))
            .and_then(|stream| stream.collect())
            .expect("query after cancel");
        assert_eq!(batch.len(), 1);

        // The cancelled query's grant went back to the pool.
        assert_eq!(service.stats().granted_bytes, 0);
        drop(client);
        server.shutdown();
    });
}

/// The streaming-memory pin: against a slow client with a window of two, the
/// server never has more than two un-credited batches outstanding — buffering
/// is O(window), not O(result) — while flow control demonstrably engaged
/// (the result spans far more batches than the window).
#[test]
fn slow_client_bounds_server_side_buffering() {
    with_watchdog(|| {
        let (service, server) = serve_tpch(4, false);
        let config = ClientConfig {
            window: 2,
            ..client_config()
        };
        let mut client = WireClient::connect(server.local_addr(), &config).expect("handshake");
        assert_eq!(client.window(), 2);

        let expected = service
            .session(BUDGET as usize)
            .sql("SELECT l_quantity FROM lineitem")
            .and_then(|stream| stream.collect())
            .expect("in-process reference");

        let mut stream = client
            .query_sql("SELECT l_quantity FROM lineitem")
            .expect("query");
        let mut rows = 0usize;
        let mut batches = 0usize;
        while let Some(batch) = stream.next_batch().expect("batch") {
            rows += batch.len();
            batches += 1;
            if batches.is_multiple_of(8) {
                // Dawdle: give the server every chance to overrun its window.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        assert_eq!(rows, expected.len(), "streamed rows match the reference");
        assert!(
            batches > 8,
            "result must span many more batches ({batches}) than the window"
        );
        let stats = server.stats();
        assert!(
            stats.peak_unacked_batches <= 2,
            "server buffered {} batches ahead of a window of 2",
            stats.peak_unacked_batches
        );
        assert!(stats.peak_unacked_batches > 0, "flow control never engaged");
        drop(stream);
        drop(client);
        server.shutdown();
    });
}

/// Idle connections are reaped after the configured timeout, and graceful
/// shutdown drains: both observable as the active-connection count returning
/// to zero while the server (then) still answers statistics.
#[test]
fn idle_connections_are_reaped_and_shutdown_drains() {
    with_watchdog(|| {
        let (_service, server) = serve_tpch(1, false);
        let mut db = TpchDb::generate_with_chunk(0.005, 2_048);
        db.freeze();
        let service = Arc::new(QueryService::new(
            Arc::new(db.db),
            ScanConfig::default(),
            ServiceConfig::default(),
        ));
        let config = WireConfig {
            auth_token: AUTH.into(),
            idle_timeout: Duration::from_millis(400),
            ..WireConfig::default()
        };
        let short_idle = WireServer::serve(Arc::clone(&service), "127.0.0.1:0", config)
            .expect("bind wire server");

        let client =
            WireClient::connect(short_idle.local_addr(), &client_config()).expect("handshake");
        let deadline = Instant::now() + WATCHDOG;
        while short_idle.stats().active_connections > 0 {
            assert!(Instant::now() < deadline, "idle connection never reaped");
            std::thread::sleep(Duration::from_millis(50));
        }
        drop(client);
        short_idle.shutdown();

        // Graceful drain with a live (idle) connection: shutdown returns and
        // joins every thread rather than hanging.
        let client = WireClient::connect(server.local_addr(), &client_config()).expect("handshake");
        server.shutdown();
        drop(client);
    });
}
