//! Integration tests for the TPC-H workload: results must be identical across every
//! scan configuration and consistent with hand-computed expectations on the
//! generated data.

use data_blocks::exec::ScanConfig;
use data_blocks::workloads::tpch::{self, TpchDb};

fn db() -> TpchDb {
    let mut db = TpchDb::generate_with_chunk(0.002, 2_048);
    db.freeze();
    db
}

#[test]
fn all_queries_agree_across_all_scan_configurations() {
    let db = db();
    for query in tpch::QUERY_SUBSET {
        let reference = tpch::run_query(&db, query, ScanConfig::named("jit")).batch;
        for config in [
            "vectorized",
            "vectorized+sarg",
            "datablocks",
            "datablocks+sarg",
            "datablocks+psma",
        ] {
            let result = tpch::run_query(&db, query, ScanConfig::named(config)).batch;
            assert_eq!(result.len(), reference.len(), "{query} under {config}");
            for row in 0..reference.len() {
                assert_eq!(
                    result.row(row),
                    reference.row(row),
                    "{query} under {config}, row {row}"
                );
            }
        }
    }
}

#[test]
fn q1_aggregates_are_internally_consistent() {
    let db = db();
    let result = tpch::q1(&db, ScanConfig::default()).batch;
    // count > 0 for every group, avg_qty = sum_qty / count
    for row in 0..result.len() {
        let sum_qty = result.value(row, 2).as_int().unwrap() as f64;
        let avg_qty = result.value(row, 6).as_double().unwrap();
        let count = result.value(row, 9).as_int().unwrap() as f64;
        assert!(count > 0.0);
        assert!((sum_qty / count - avg_qty).abs() < 1e-6);
    }
}

#[test]
fn q6_revenue_matches_brute_force() {
    let db = db();
    // brute force over the frozen lineitem relation using point accesses
    let lineitem = db.relation("lineitem");
    let s = lineitem.schema();
    let (ship, disc, qty, price) = (
        s.idx("l_shipdate"),
        s.idx("l_discount"),
        s.idx("l_quantity"),
        s.idx("l_extendedprice"),
    );
    let lo = data_blocks::datablocks::date_to_days(1994, 1, 1);
    let hi = data_blocks::datablocks::date_to_days(1995, 1, 1) - 1;
    let mut expected = 0.0f64;
    for idx in 0..lineitem.cold_block_count() {
        let block = lineitem.cold_block(idx);
        for row in 0..block.tuple_count() as usize {
            let d = block.get(row, ship).as_int().unwrap();
            let discount = block.get(row, disc).as_int().unwrap();
            let quantity = block.get(row, qty).as_int().unwrap();
            if d >= lo && d <= hi && (5..=7).contains(&discount) && quantity < 24 {
                expected +=
                    block.get(row, price).as_int().unwrap() as f64 * discount as f64 / 100.0;
            }
        }
    }
    let got = tpch::q6(&db, ScanConfig::default())
        .batch
        .value(0, 0)
        .as_double()
        .unwrap();
    assert!(
        (got - expected).abs() < 1e-6 * expected.max(1.0),
        "{got} vs {expected}"
    );
}

#[test]
fn compression_shrinks_tpch_and_layouts_are_diverse() {
    let db = db();
    let mut total_ratio = 0.0;
    let mut layouts = 0;
    for name in tpch::RELATIONS {
        let stats = db.relation(name).storage_stats();
        assert_eq!(stats.hot_rows, 0, "{name} should be fully frozen");
        total_ratio += stats.compression_ratio();
        layouts += db.relation(name).layout_combinations();
    }
    assert!(total_ratio / tpch::RELATIONS.len() as f64 > 1.3);
    assert!(layouts >= tpch::RELATIONS.len());
}
