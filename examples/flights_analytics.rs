//! Analytical workload on the flights data set (the paper's Section 5.2 / Appendix D
//! scenario): the relation is naturally ordered by date, so SMAs skip most Data
//! Blocks for the year restriction and PSMAs narrow the rest.
//!
//! Run with: `cargo run --release --example flights_analytics`

use data_blocks::exec::ScanConfig;
use data_blocks::workloads::flights;
use std::time::Instant;

fn main() {
    let rows = 300_000;
    println!("generating {rows} synthetic flight records (1987-10 .. 2008-04)...");
    let mut relation = flights::generate(rows, data_blocks::datablocks::DEFAULT_BLOCK_CAPACITY);
    relation.freeze_all();
    let stats = relation.storage_stats();
    println!(
        "frozen into {} Data Blocks, {:.2}x compression",
        stats.cold_blocks,
        stats.compression_ratio()
    );

    for (label, config) in [
        ("JIT-style tuple-at-a-time scan", ScanConfig::named("jit")),
        (
            "Data Blocks + SARG/SMA + PSMA  ",
            ScanConfig::named("datablocks+psma"),
        ),
    ] {
        let start = Instant::now();
        let (result, scan_stats) = flights::sfo_delay_query(&relation, config);
        let elapsed = start.elapsed();
        println!(
            "\n{label}: {:?} ({} of {} blocks skipped, {} rows scanned)",
            elapsed, scan_stats.blocks_skipped, scan_stats.blocks_total, scan_stats.rows_scanned
        );
        println!("carrier | avg arrival delay into SFO (1998-2008)");
        for row in 0..result.len().min(5) {
            println!(
                "  {:>5} | {:+.1} min",
                result.value(row, 0),
                result.value(row, 1).as_double().unwrap()
            );
        }
    }
}
