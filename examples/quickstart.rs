//! Quickstart: freeze a chunk into a Data Block, run SARGable scans on the
//! compressed data, and read individual records back.
//!
//! Run with: `cargo run --release --example quickstart`

use data_blocks::datablocks::builder::{freeze, int_column, str_column};
use data_blocks::datablocks::{scan_collect, CmpOp, Restriction, ScanOptions, Value};

fn main() {
    // A cold chunk of an orders-like relation: 65 536 records, three attributes.
    let n = 1 << 16;
    let order_id = int_column((0..n as i64).collect());
    let quantity = int_column((0..n as i64).map(|i| 1 + (i * 7) % 50).collect());
    let status = str_column(
        (0..n)
            .map(|i| ["OPEN", "SHIPPED", "RETURNED"][i % 3].to_string())
            .collect(),
    );

    // Freeze it: each attribute gets the compression scheme optimal for its domain,
    // plus SMA (min/max) and PSMA (positional) light-weight indexes.
    let block = freeze(&[order_id, quantity, status]);
    println!(
        "frozen {} records into a Data Block of {} bytes",
        block.tuple_count(),
        block.byte_size()
    );
    for (idx, column) in block.columns().iter().enumerate() {
        println!("  attribute {idx}: {:?}", column.compression.kind());
    }

    // Point access: O(1) on compressed data — this is what keeps OLTP fast.
    assert_eq!(block.get(4711, 0), Value::Int(4711));
    println!(
        "record 4711 = ({}, {}, {})",
        block.get(4711, 0),
        block.get(4711, 1),
        block.get(4711, 2)
    );

    // SARGable scan: predicates are evaluated on the compressed code words with SIMD,
    // the match positions are returned, and only matches are unpacked.
    let matches = scan_collect(
        &block,
        &[
            Restriction::between(1, 10i64, 19i64),
            Restriction::eq(2, "SHIPPED"),
        ],
        ScanOptions::default(),
    );
    println!(
        "scan: {} records have quantity in [10,19] and status SHIPPED",
        matches.len()
    );

    // The same scan with a restriction outside the block's value domain is answered
    // from the SMA alone, without touching the data.
    let none = scan_collect(
        &block,
        &[Restriction::cmp(1, CmpOp::Gt, 1_000i64)],
        ScanOptions::default(),
    );
    assert!(none.is_empty());
    println!("scan with impossible predicate touched no data (SMA block skipping)");
}
