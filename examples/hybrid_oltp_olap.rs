//! Hybrid OLTP & OLAP on one relation: inserts and point lookups hit the hot tail,
//! cold chunks are frozen into compressed Data Blocks, updates to frozen records are
//! translated into delete + re-insert, and analytical scans run over both.
//!
//! Run with: `cargo run --release --example hybrid_oltp_olap`

use data_blocks::datablocks::{DataType, Restriction, Value};
use data_blocks::exec::prelude::*;
use data_blocks::storage::{ColumnDef, Relation, Schema};

fn main() {
    let schema = Schema::new(vec![
        ColumnDef::new("account_id", DataType::Int),
        ColumnDef::new("region", DataType::Str),
        ColumnDef::new("balance", DataType::Int), // cents
    ])
    .with_primary_key("account_id");
    let mut accounts = Relation::with_chunk_capacity("accounts", schema, 16_384);

    // OLTP: load 100k accounts.
    for id in 0..100_000i64 {
        accounts.insert(vec![
            Value::Int(id),
            Value::Str(["EMEA", "AMER", "APAC"][(id % 3) as usize].to_string()),
            Value::Int(10_000 + id % 5_000),
        ]);
    }
    // Cold chunks become compressed, immutable Data Blocks; the tail stays hot.
    accounts.freeze_full_chunks();
    let stats = accounts.storage_stats();
    println!(
        "storage: {} cold blocks ({}), {} hot chunks ({}), compression ratio {:.2}x",
        stats.cold_blocks,
        stats.cold_bytes,
        stats.hot_chunks,
        stats.hot_bytes,
        stats.compression_ratio()
    );

    // OLTP point access + update against frozen data: the record is invalidated in
    // the block and the new version lands in the hot tail.
    let id = accounts.lookup_pk(1_234).expect("account exists");
    let old_balance = accounts.get(id, 2).as_int().unwrap();
    accounts.update(
        id,
        vec![
            Value::Int(1_234),
            Value::Str("EMEA".into()),
            Value::Int(old_balance + 500),
        ],
    );
    let new_id = accounts.lookup_pk(1_234).unwrap();
    println!(
        "account 1234: balance {} -> {}",
        old_balance,
        accounts.get(new_id, 2)
    );

    // OLAP: average balance per region over the whole relation (hot + cold) with
    // SARGable push-down of a balance restriction into the scan.
    let s = accounts.schema();
    let scan = RelationScanner::new(
        &accounts,
        vec![s.idx("region"), s.idx("balance")],
        vec![Restriction::cmp(s.idx("balance"), CmpOp::Ge, 12_000i64)],
        ScanConfig::default(),
    );
    let mut agg = HashAggregateOp::new(
        Box::new(ScanOp::new(scan)),
        vec![Expr::col(0)],
        vec![DataType::Str],
        vec![
            AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
            AggSpec::new(AggFunc::Avg, Expr::col(1), DataType::Double),
        ],
    );
    let result = agg.collect_all();
    println!("\nregion | wealthy accounts | avg balance (cents)");
    for row in 0..result.len() {
        println!(
            "{:>6} | {:>16} | {:.2}",
            result.value(row, 0),
            result.value(row, 1),
            result.value(row, 2).as_double().unwrap()
        );
    }
}
