//! # data-blocks — reproduction of "Data Blocks: Hybrid OLTP and OLAP on Compressed
//! Storage using both Vectorization and Compilation" (SIGMOD 2016)
//!
//! This facade crate re-exports the workspace members so applications can depend on
//! a single crate:
//!
//! * [`datablocks`] — the compressed, byte-addressable block format with SMA/PSMA
//!   light-weight indexes (the paper's core contribution).
//! * [`dbsimd`] — SSE/AVX2 predicate-evaluation kernels with precomputed positions
//!   tables (find-matches / reduce-matches).
//! * [`storage`] — chunked hybrid relations: hot uncompressed chunks, cold frozen
//!   Data Blocks, primary-key index, delete/update semantics, and the file-backed
//!   block store (spill on freeze, pinning block cache, SMA summaries kept hot)
//!   that takes relations past main memory.
//! * [`exec`] — the interpreted vectorized scan subsystem feeding (simulated)
//!   JIT-compiled tuple-at-a-time query pipelines, plus relational operators.
//! * [`query`] — the query surface: the SQL front end, the versioned JSON IR
//!   for logical plans, the logical → physical planner lowering it onto
//!   `exec`'s operator trees, and the multi-tenant query service
//!   ([`Session`] / [`QueryService`]) every query runs through.
//! * [`bitpack`] — the horizontal bit-packing and heavy-compression baselines the
//!   paper evaluates against.
//! * [`workloads`] — TPC-H, TPC-C, IMDB cast_info and flights generators and the
//!   reproduced query set.
//!
//! See `ARCHITECTURE.md` at the repository root for the crate map, the
//! hot-chunk → frozen-block → spilled-frame lifecycle, the morsel pipeline driver
//! and the paper sections each subsystem reproduces;
//! `crates/datablocks/README.md` specifies the on-disk formats byte-exactly.
//!
//! ```
//! use data_blocks::datablocks::builder::{freeze, int_column};
//! use data_blocks::datablocks::{scan_collect, Restriction, ScanOptions};
//!
//! let block = freeze(&[int_column((0..10_000).collect())]);
//! let hits = scan_collect(&block, &[Restriction::between(0, 100i64, 199i64)], ScanOptions::default());
//! assert_eq!(hits.len(), 100);
//! ```

#![warn(missing_docs)]

pub use bitpack;
pub use datablocks;
pub use dbsimd;
pub use exec;
pub use query;
pub use storage;
pub use workloads;

pub use query::{Connect, Error, QueryService, ServiceConfig, Session};
